"""The SPMD machine simulator: a discrete-event interpreter for the IR.

Every virtual processor executes the program's ``main`` with its own
registers, local arrays and cycle clock.  Shared accesses route through
the distributed memory model (:mod:`repro.runtime.memory`) and the
network (:mod:`repro.runtime.network`); synchronization uses the homed
flag/lock/barrier state (:mod:`repro.runtime.sync_objects`).

Timing model (see :mod:`repro.runtime.machine` for the constants):

* ordinary instructions cost ``cpu_op``; private array traffic costs
  ``local_mem``;
* a shared access whose element is local costs ``local_access``;
* a remote blocking access costs the full round trip and stalls the
  processor; a split-phase ``get``/``put`` costs only ``send_overhead``
  at issue and overlaps the rest — ``sync_ctr`` stalls only for
  whatever has not completed yet (message pipelining, §6);
* servicing a remote request steals ``remote_handle`` cycles from the
  owning CPU (CM-5 active-message style); consuming an acknowledgement
  steals ``recv_overhead`` from the issuer — making ``store`` cheaper
  than ``put`` on both ends (one-way communication, §6);
* ``barrier`` is a central rendezvous that also drains outstanding
  stores (the implicit ``all_store_sync``).

The simulator is deterministic for a given seed.  A non-zero machine
``jitter`` randomizes per-message wire time (point-to-point FIFO is
preserved), which the SC litmus tests use as an adversarial network.

Reliability protocol (fault injection)
--------------------------------------

With a :class:`~repro.runtime.network.FaultPlan` installed the wire may
drop, duplicate, spike or partition traffic, so every logical message
travels inside a sequence-numbered envelope:

* the **sender** keeps an unacked-envelope table per (src, dst) link
  and a retransmission timer per envelope — exponential backoff from
  :meth:`MachineConfig.retransmit_timeout`, capped at the plan's
  ``retry_cap``, after which :class:`NetworkFault` is raised (the
  protocol turns silent loss into a diagnosis, never a hang);
* the **receiver** acknowledges every arriving envelope with a
  transport-level ``NET_ACK`` (acks are themselves faultable — a lost
  ack just causes one more retransmission), suppresses duplicates, and
  releases envelopes to the message handlers strictly in sequence
  order — re-establishing the point-to-point FIFO guarantee that
  one-way ``store`` correctness rests on.  Acks are **cumulative**:
  besides echoing the received seq they carry the link's in-order
  delivery floor, so an envelope whose own acks were all lost is still
  cleared by any later ack on the link — exhausting ``retry_cap``
  then requires sustained link death, not an unlucky streak;
* handlers therefore observe each logical message **exactly once and
  in order**, so ``PUT_REQ``/``STORE_REQ``/sync traffic stays
  idempotent under retransmission and ``outstanding_stores`` drains
  exactly as on a perfect network.

Transport acks are pure network bookkeeping: they steal no handler
cycles from either CPU.  Timing under faults differs from the perfect
network (that is the point), but final memory for deterministic
programs does not.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.errors import DeadlockError, NetworkFault, RuntimeFault
from repro.ir.cfg import Function, Module
from repro.ir.instructions import (
    Const,
    Instr,
    Opcode,
    Operand,
    Temp,
    UnOpKind,
)

# The operator helpers and the PENDING sentinel moved to
# :mod:`repro.runtime.decode` (the threaded-code decoder shares them
# with the generated step functions); re-exported here for
# compatibility.
from repro.runtime.decode import (  # noqa: F401 - re-exports
    PENDING,
    Step,
    _binop,
    _intrinsic,
    _Pending,
    decode_function,
)
from repro.runtime.events import CalendarQueue, LinkChannels
from repro.runtime.machine import MachineConfig, validate_memory_model
from repro.runtime.memory import GlobalMemory, StoreBuffers, flat_index
from repro.runtime.network import FaultPlan, Message, MsgKind, Network
from repro.runtime.sync_objects import FlagTable, LockTable
from repro.runtime.topology import BarrierTopology, build_topology
from repro.runtime.trace import ExecutionTrace, MemEvent, SyncRecord

Value = Union[int, float]

#: Event-engine implementations.  ``batched`` (the default) runs the
#: calendar-queue core with the decoded threaded-code interpreter;
#: ``reference`` is the seed flat-heapq loop with the per-instruction
#: interpreter, retained as the differential oracle (the
#: ``place_syncs_reference`` convention).  Both produce cycle-identical
#: schedules on the central topology — the parity tests pin this.
ENGINES: Tuple[str, ...] = ("batched", "reference")

#: Synchronization opcodes that act as full fences under the weak
#: memory models: the executing processor's store buffer drains
#: (applies globally, in issue order) before the operation proceeds.
#: ``sync_ctr`` is deliberately absent — waiting for one's own
#: outstanding split-phase *reads* does not publish buffered writes on
#: TSO hardware.  Where a sync_ctr enforces a compiler-placed delay
#: edge, the edge target's uid is in ``Simulator.delay_fences`` and
#: drains there instead.
_FENCE_OPCODES = frozenset(
    {
        Opcode.STORE_SYNC,
        Opcode.POST,
        Opcode.WAIT,
        Opcode.LOCK,
        Opcode.UNLOCK,
        Opcode.BARRIER,
    }
)


class ProcState(enum.Enum):
    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"


@dataclass
class _Frame:
    function: Function
    block: str
    index: int
    regs: Dict[str, Value]
    arrays: Dict[str, List[Value]]
    #: caller temp receiving this frame's return value
    result_dest: Optional[Temp] = None
    #: decoded step lists per block (batched engine only)
    code: Optional[Dict[str, List[Step]]] = None


@dataclass
class _Retransmit:
    """Sender-side state for one unacked envelope."""

    msg: Message
    attempts: int = 0


@dataclass
class SimulationResult:
    """Everything a benchmark or test wants from one run."""

    cycles: int
    per_proc_cycles: List[int]
    #: per-processor cycles stalled waiting on communication/sync
    per_proc_wait: List[int]
    instructions: int
    memory: GlobalMemory
    network: Network
    trace: Optional[ExecutionTrace] = None
    #: store-buffer counters when the machine ran a weak model
    weak_stats: Optional[Dict[str, int]] = None

    def snapshot(self) -> Dict[str, List[Value]]:
        return self.memory.snapshot()

    # -- reliability-protocol observability --------------------------------

    @property
    def retransmits(self) -> int:
        return self.network.stats.retransmits

    @property
    def drops(self) -> int:
        return self.network.stats.total_drops

    @property
    def duplicates_suppressed(self) -> int:
        return self.network.stats.duplicates_suppressed

    def fault_summary(self) -> Dict[str, object]:
        """Drop/duplicate/retransmit counters and the retry histogram."""
        return self.network.stats.fault_summary()

    @property
    def total_messages(self) -> int:
        return self.network.stats.total_messages

    @property
    def total_wait_cycles(self) -> int:
        """Aggregate stall time across processors (the latency the
        paper's optimizations exist to hide)."""
        return sum(self.per_proc_wait)

    def utilization(self) -> float:
        """Fraction of processor-cycles spent not stalled."""
        total = sum(self.per_proc_cycles)
        if total == 0:
            return 1.0
        return 1.0 - self.total_wait_cycles / total


class Processor:
    """One virtual processor's architectural state."""

    def __init__(self, pid: int, sim: "Simulator"):
        self.pid = pid
        self.sim = sim
        self.clock = 0
        self.stolen = 0
        #: cycles spent stalled on remote completions / synchronization
        self.wait_cycles = 0
        self.state = ProcState.READY
        self.block_reason: Optional[Tuple] = None
        self.counters: Dict[int, int] = {}
        self.instructions = 0
        #: barriers this processor has executed (the per-proc
        #: generation serial the precedence oracle pairs arrivals by)
        self.barrier_no = 0
        module = sim.module
        main = module.functions[sim.entry]
        self.frames: List[_Frame] = [self._make_frame(main, None)]

    def _make_frame(self, function: Function,
                    result_dest: Optional[Temp]) -> _Frame:
        regs: Dict[str, Value] = {
            "MYPROC": self.pid,
            "PROCS": self.sim.num_procs,
        }
        arrays = {
            name: [0.0 if array.kind.value == "double" else 0]
            * array.element_count
            for name, array in function.local_arrays.items()
        }
        return _Frame(
            function=function,
            block=function.entry.label,
            index=0,
            regs=regs,
            arrays=arrays,
            result_dest=result_dest,
            code=self.sim.decoded(function),
        )

    # -- operand evaluation -----------------------------------------------

    def value(self, operand: Operand) -> Value:
        if isinstance(operand, Const):
            return operand.value
        frame = self.frames[-1]
        try:
            result = frame.regs[operand.name]
        except KeyError:
            raise RuntimeFault(
                f"P{self.pid}: use of undefined temp %{operand.name}"
            ) from None
        if isinstance(result, _Pending):
            raise RuntimeFault(
                f"P{self.pid}: read of %{operand.name} before its get "
                "completed (missing sync_ctr — compiler bug)"
            )
        return result

    def int_value(self, operand: Operand) -> int:
        return int(self.value(operand))

    def indices_of(self, instr: Instr) -> Tuple[int, ...]:
        return tuple(self.int_value(op) for op in instr.indices)

    def set_reg(self, temp: Temp, value: Value) -> None:
        self.frames[-1].regs[temp.name] = value

    # -- the interpreter loop -----------------------------------------------

    def advance(self, now: int) -> None:
        """Executes until the processor blocks or finishes."""
        if now > self.clock:
            # The gap between our last local work and the wake event is
            # stall time (waiting on replies, flags, locks, barriers).
            self.wait_cycles += now - self.clock
            self.clock = now
        self.clock += self.stolen
        self.stolen = 0
        self.state = ProcState.READY
        self.block_reason = None
        sim = self.sim
        while True:
            if self.clock > sim.max_cycles:
                raise RuntimeFault(
                    f"P{self.pid}: exceeded cycle budget {sim.max_cycles} "
                    "(runaway loop?)"
                )
            frame = self.frames[-1]
            block = frame.function.block(frame.block)
            instr = block.instrs[frame.index]
            self.instructions += 1
            if self._execute(instr, frame):
                continue
            return  # blocked or done

    def advance_fast(self, now: int) -> None:
        """:meth:`advance` over decoded step lists (batched engine).

        Same wake accounting, same blocking protocol; the inner loop
        runs step closures instead of the opcode dispatch.  Step return
        protocol: ``>= 0`` continue at that index in the same block,
        ``-1`` refetch frame/block (control transfer), ``-2`` blocked
        or done.  The cycle-budget check runs per step rather than per
        instruction; every loop crosses a block boundary (a step), so a
        runaway program still faults with the seed's message.
        """
        if now > self.clock:
            self.wait_cycles += now - self.clock
            self.clock = now
        self.clock += self.stolen
        self.stolen = 0
        self.state = ProcState.READY
        self.block_reason = None
        max_cycles = self.sim.max_cycles
        frames = self.frames
        while True:
            frame = frames[-1]
            steps = frame.code[frame.block]
            index = frame.index
            regs = frame.regs
            while True:
                if self.clock > max_cycles:
                    frame.index = index
                    raise RuntimeFault(
                        f"P{self.pid}: exceeded cycle budget {max_cycles} "
                        "(runaway loop?)"
                    )
                result = steps[index](self, frame, regs)
                if result >= 0:
                    index = result
                    continue
                if result == -1:
                    break  # control transfer: refetch frame/block
                return  # blocked or done

    # Returns True to keep running, False when blocked/done.
    def _execute(self, instr: Instr, frame: _Frame) -> bool:
        sim = self.sim
        machine = sim.machine
        op = instr.op

        # Weak models: synchronization and compiler-placed delay
        # targets fence the store buffer.  Blocking ops may re-execute
        # on wake; re-flushing an empty buffer is a no-op.
        if sim.weak is not None and (
            op in _FENCE_OPCODES or instr.uid in sim.delay_fences
        ):
            sim.weak.flush(self.pid)

        if op is Opcode.CONST:
            self.set_reg(instr.dest, instr.value)
            self.clock += machine.cpu_op
        elif op is Opcode.MOVE:
            self.set_reg(instr.dest, self.value(instr.src))
            self.clock += machine.cpu_op
        elif op is Opcode.BINOP:
            self.set_reg(
                instr.dest,
                _binop(instr.binop, self.value(instr.lhs),
                       self.value(instr.rhs)),
            )
            self.clock += machine.cpu_op
        elif op is Opcode.UNOP:
            value = self.value(instr.src)
            if instr.unop is UnOpKind.NEG:
                self.set_reg(instr.dest, -value)
            else:
                self.set_reg(instr.dest, 0 if value else 1)
            self.clock += machine.cpu_op
        elif op is Opcode.INTRINSIC:
            args = [self.value(a) for a in instr.args]
            self.set_reg(instr.dest, _intrinsic(instr.intrinsic, args))
            self.clock += machine.cpu_op * 4
        elif op is Opcode.LOAD_LOCAL:
            array = frame.arrays[instr.var]
            flat = self._local_flat(frame, instr)
            self.set_reg(instr.dest, array[flat])
            self.clock += machine.local_mem
        elif op is Opcode.STORE_LOCAL:
            array = frame.arrays[instr.var]
            flat = self._local_flat(frame, instr)
            array[flat] = self.value(instr.src)
            self.clock += machine.local_mem
        elif op is Opcode.READ_SHARED:
            return self._blocking_read(instr)
        elif op is Opcode.WRITE_SHARED:
            return self._blocking_write(instr)
        elif op is Opcode.GET:
            self._issue_get(instr)
        elif op is Opcode.PUT:
            self._issue_put(instr)
        elif op is Opcode.STORE:
            self._issue_store(instr)
        elif op is Opcode.SYNC_CTR:
            if self.counters.get(instr.counter, 0):
                self._block(("counter", instr.counter), instr)
                return False
            self.clock += machine.cpu_op
        elif op is Opcode.STORE_SYNC:
            if sim.outstanding_stores:
                self._block(("store_sync",), instr)
                sim.store_sync_waiters.append(self.pid)
                return False
            self.clock += machine.cpu_op
        elif op is Opcode.POST:
            return self._post(instr)
        elif op is Opcode.WAIT:
            return self._wait(instr)
        elif op is Opcode.LOCK:
            return self._lock(instr)
        elif op is Opcode.UNLOCK:
            return self._unlock(instr)
        elif op is Opcode.BARRIER:
            if sim.trace is not None:
                sim.trace.record_sync(
                    self.pid, "barrier", serial=self.barrier_no,
                    uid=instr.uid,
                )
            self.barrier_no += 1
            self.clock += machine.send_overhead
            sim.topology.local_arrive(self.pid, self.clock)
            self._block(("barrier",), instr)
            return False
        elif op is Opcode.JUMP:
            frame.block = instr.target
            frame.index = 0
            self.clock += machine.cpu_op
            return True
        elif op is Opcode.BRANCH:
            taken = self.value(instr.cond) != 0
            frame.block = instr.true_target if taken else instr.false_target
            frame.index = 0
            self.clock += machine.cpu_op
            return True
        elif op is Opcode.CALL:
            callee = sim.module.functions[instr.callee]
            new_frame = self._make_frame(callee, instr.dest)
            for param, arg in zip(callee.params, instr.args):
                new_frame.regs[param.name] = self.value(arg)
            # Advance past the call first: the callee's ret resumes the
            # caller at the following instruction.
            frame.index += 1
            self.frames.append(new_frame)
            self.clock += machine.cpu_op * 2
            return True
        elif op is Opcode.RET:
            result = self.value(instr.src) if instr.src is not None else None
            dest = frame.result_dest
            self.frames.pop()
            self.clock += machine.cpu_op
            if not self.frames:
                self.state = ProcState.DONE
                sim.proc_finished(self)
                return False
            if dest is not None:
                self.set_reg(dest, result)
            return True
        else:  # pragma: no cover - defensive
            raise RuntimeFault(f"P{self.pid}: cannot execute {instr}")

        frame.index += 1
        return True

    def _local_flat(self, frame: _Frame, instr: Instr) -> int:
        array = frame.function.local_arrays[instr.var]
        flat = 0
        for operand, extent in zip(instr.indices, array.dims):
            index = self.int_value(operand)
            if not 0 <= index < extent:
                raise RuntimeFault(
                    f"P{self.pid}: local array {instr.var} index {index} "
                    f"out of range [0, {extent})"
                )
            flat = flat * extent + index
        return flat

    # -- shared data accesses ---------------------------------------------------

    def _blocking_read(self, instr: Instr) -> bool:
        sim = self.sim
        indices = self.indices_of(instr)
        owner = sim.memory.owner(instr.var, indices)
        event = None
        if sim.trace is not None:
            event = sim.trace.record_read_issue(
                self.pid, sim.location_of(instr.var, indices),
                uid=instr.uid,
            )
        if owner == self.pid:
            value = sim.memory.read(instr.var, indices)
            if sim.weak is not None:
                hit = sim.weak.forward(
                    self.pid, *sim.location_of(instr.var, indices)
                )
                if hit is not None:
                    value = hit.value
                    if event is not None:
                        event.forwarded = True
            self.set_reg(instr.dest, value)
            if event is not None:
                event.value = value
            self.clock += sim.machine.local_access
            self.frames[-1].index += 1
            return True
        self.clock += sim.machine.send_overhead
        tag = sim.new_tag()
        sim.send(
            Message(
                MsgKind.GET_REQ,
                src=self.pid,
                dst=owner,
                var=instr.var,
                indices=indices,
                dest_temp=instr.dest.name,
                tag=tag,
            ),
            self.clock,
            trace_event=event,
        )
        self._block(("reply", tag), instr)
        return False

    def _blocking_write(self, instr: Instr) -> bool:
        sim = self.sim
        indices = self.indices_of(instr)
        value = self.value(instr.src)
        owner = sim.memory.owner(instr.var, indices)
        if sim.trace is not None:
            sim.trace.record_write(
                self.pid, sim.location_of(instr.var, indices), value,
                uid=instr.uid,
            )
        if owner == self.pid:
            if sim.weak is None:
                sim.memory.write(instr.var, indices, value)
            else:
                self._buffer_write(instr.var, indices, value)
            self.clock += sim.machine.local_access
            self.frames[-1].index += 1
            return True
        self.clock += sim.machine.send_overhead
        tag = sim.new_tag()
        sim.send(
            Message(
                MsgKind.PUT_REQ,
                src=self.pid,
                dst=owner,
                var=instr.var,
                indices=indices,
                value=value,
                tag=tag,
            ),
            self.clock,
        )
        self._block(("reply", tag), instr)
        return False

    def _buffer_write(self, var: str, indices: Tuple[int, ...],
                      value: Value) -> None:
        """Parks a locally-owned write in this proc's store buffer."""
        sim = self.sim
        name, flat = sim.location_of(var, indices)
        entry_id, delay = sim.weak.enqueue(self.pid, name, flat, value)
        sim.schedule_drain(self.pid, entry_id, self.clock + delay)

    def _issue_get(self, instr: Instr) -> None:
        sim = self.sim
        indices = self.indices_of(instr)
        owner = sim.memory.owner(instr.var, indices)
        event = None
        if sim.trace is not None:
            event = sim.trace.record_read_issue(
                self.pid, sim.location_of(instr.var, indices),
                uid=instr.uid,
            )
        local_flat: Optional[int] = None
        if instr.local_array is not None:
            local_flat = self._local_flat_fused(instr)
        if owner == self.pid:
            value = sim.memory.read(instr.var, indices)
            if sim.weak is not None:
                hit = sim.weak.forward(
                    self.pid, *sim.location_of(instr.var, indices)
                )
                if hit is not None:
                    value = hit.value
                    if event is not None:
                        event.forwarded = True
            if local_flat is not None:
                self.frames[-1].arrays[instr.local_array][local_flat] = value
            else:
                self.set_reg(instr.dest, value)
            if event is not None:
                event.value = value
            self.clock += sim.machine.local_access
            return
        self.clock += sim.machine.send_overhead
        self.counters[instr.counter] = self.counters.get(instr.counter, 0) + 1
        if local_flat is not None:
            self.frames[-1].arrays[instr.local_array][local_flat] = PENDING
        else:
            self.set_reg(instr.dest, PENDING)
        sim.send(
            Message(
                MsgKind.GET_REQ,
                src=self.pid,
                dst=owner,
                var=instr.var,
                indices=indices,
                dest_temp=instr.dest.name if instr.dest is not None else None,
                local_array=instr.local_array,
                local_flat=local_flat,
                counter=instr.counter,
            ),
            self.clock,
            trace_event=event,
        )

    def _local_flat_fused(self, instr: Instr) -> int:
        """Flat offset into a fused get's local landing array."""
        array = self.frames[-1].function.local_arrays[instr.local_array]
        flat = 0
        for operand, extent in zip(instr.local_indices, array.dims):
            index = self.int_value(operand)
            if not 0 <= index < extent:
                raise RuntimeFault(
                    f"P{self.pid}: fused get target {instr.local_array} "
                    f"index {index} out of range [0, {extent})"
                )
            flat = flat * extent + index
        return flat

    def _issue_put(self, instr: Instr) -> None:
        sim = self.sim
        indices = self.indices_of(instr)
        value = self.value(instr.src)
        owner = sim.memory.owner(instr.var, indices)
        if sim.trace is not None:
            sim.trace.record_write(
                self.pid, sim.location_of(instr.var, indices), value,
                uid=instr.uid,
            )
        if owner == self.pid:
            if sim.weak is None:
                sim.memory.write(instr.var, indices, value)
            else:
                self._buffer_write(instr.var, indices, value)
            self.clock += sim.machine.local_access
            return
        self.clock += sim.machine.send_overhead
        self.counters[instr.counter] = self.counters.get(instr.counter, 0) + 1
        sim.send(
            Message(
                MsgKind.PUT_REQ,
                src=self.pid,
                dst=owner,
                var=instr.var,
                indices=indices,
                value=value,
                counter=instr.counter,
            ),
            self.clock,
        )

    def _issue_store(self, instr: Instr) -> None:
        sim = self.sim
        indices = self.indices_of(instr)
        value = self.value(instr.src)
        owner = sim.memory.owner(instr.var, indices)
        if sim.trace is not None:
            sim.trace.record_write(
                self.pid, sim.location_of(instr.var, indices), value,
                uid=instr.uid,
            )
        if owner == self.pid:
            if sim.weak is None:
                sim.memory.write(instr.var, indices, value)
            else:
                self._buffer_write(instr.var, indices, value)
            self.clock += sim.machine.local_access
            return
        self.clock += sim.machine.send_overhead
        sim.outstanding_stores += 1
        sim.send(
            Message(
                MsgKind.STORE_REQ,
                src=self.pid,
                dst=owner,
                var=instr.var,
                indices=indices,
                value=value,
            ),
            self.clock,
        )

    # -- synchronization constructs -------------------------------------------

    def _sync_object(self, instr: Instr) -> Tuple[int, Tuple[str, int]]:
        sim = self.sim
        indices = self.indices_of(instr)
        owner = sim.memory.owner(instr.var, indices)
        var = sim.memory.var(instr.var)
        flat = flat_index(var, indices) if var.dims else 0
        return owner, (instr.var, flat)

    def _post(self, instr: Instr) -> bool:
        sim = self.sim
        owner, key = self._sync_object(instr)
        if sim.trace is not None:
            sim.trace.record_sync(self.pid, "post", key, uid=instr.uid)
        if owner == self.pid:
            for waiter in sim.flags.post(key):
                sim.grant_wait(waiter, key, self.clock)
            self.clock += sim.machine.local_access
            self.frames[-1].index += 1
            return True
        self.clock += sim.machine.send_overhead
        tag = sim.new_tag()
        sim.send(
            Message(
                MsgKind.POST_REQ,
                src=self.pid,
                dst=owner,
                var=key[0],
                indices=self.indices_of(instr),
                tag=tag,
            ),
            self.clock,
        )
        self._block(("reply", tag), instr)
        return False

    def _wait(self, instr: Instr) -> bool:
        sim = self.sim
        owner, key = self._sync_object(instr)
        if sim.trace is not None:
            sim.trace.record_sync(self.pid, "wait", key, uid=instr.uid)
        if owner == self.pid:
            if sim.flags.is_posted(key):
                self.clock += sim.machine.local_access
                self.frames[-1].index += 1
                return True
            sim.flags.add_waiter(key, self.pid)
            self._block(("wait", key), instr)
            return False
        self.clock += sim.machine.send_overhead
        sim.send(
            Message(
                MsgKind.WAIT_REQ,
                src=self.pid,
                dst=owner,
                var=key[0],
                indices=self.indices_of(instr),
            ),
            self.clock,
        )
        self._block(("wait", key), instr)
        return False

    def _lock(self, instr: Instr) -> bool:
        sim = self.sim
        owner, key = self._sync_object(instr)
        record: Optional[SyncRecord] = None
        if sim.trace is not None:
            record = sim.trace.record_sync(
                self.pid, "lock", key, uid=instr.uid,
            )
        if owner == self.pid:
            if sim.locks.acquire(key, self.pid):
                if record is not None:
                    record.serial = sim.locks.release_serial(key)
                self.clock += sim.machine.local_access
                self.frames[-1].index += 1
                return True
            if record is not None:
                sim._pending_lock[self.pid] = record
            self._block(("lock", key), instr)
            return False
        if record is not None:
            sim._pending_lock[self.pid] = record
        self.clock += sim.machine.send_overhead
        sim.send(
            Message(
                MsgKind.LOCK_REQ,
                src=self.pid,
                dst=owner,
                var=key[0],
                indices=self.indices_of(instr),
            ),
            self.clock,
        )
        self._block(("lock", key), instr)
        return False

    def _unlock(self, instr: Instr) -> bool:
        sim = self.sim
        owner, key = self._sync_object(instr)
        record: Optional[SyncRecord] = None
        if sim.trace is not None:
            record = sim.trace.record_sync(
                self.pid, "unlock", key, uid=instr.uid,
            )
        if owner == self.pid:
            next_holder = sim.locks.release(key, self.pid)
            if record is not None:
                record.serial = sim.locks.release_serial(key)
            if next_holder is not None:
                sim.grant_lock(next_holder, key, self.clock)
            self.clock += sim.machine.local_access
            self.frames[-1].index += 1
            return True
        if record is not None:
            sim._pending_unlock[self.pid] = record
        self.clock += sim.machine.send_overhead
        tag = sim.new_tag()
        sim.send(
            Message(
                MsgKind.UNLOCK_REQ,
                src=self.pid,
                dst=owner,
                var=key[0],
                indices=self.indices_of(instr),
                tag=tag,
            ),
            self.clock,
        )
        self._block(("reply", tag), instr)
        return False

    # -- blocking/waking ---------------------------------------------------------

    def _block(self, reason: Tuple, instr: Instr) -> None:
        self.state = ProcState.BLOCKED
        self.block_reason = reason
        # The instruction completes when we are woken: the wake path
        # advances past it (sync_ctr & co. re-check on resume instead).
        if reason[0] in ("reply", "wait", "lock", "barrier"):
            self.frames[-1].index += 1

    def wake(self, time: int) -> None:
        if self.state is not ProcState.BLOCKED:
            raise RuntimeFault(f"P{self.pid}: waking a non-blocked processor")
        self.state = ProcState.READY
        self.block_reason = None
        self.sim.schedule_resume(self.pid, max(time, self.clock))


class Simulator:
    """Drives the processors and the network to completion."""

    def __init__(
        self,
        module: Module,
        num_procs: int,
        machine: MachineConfig,
        seed: int = 0,
        trace: bool = False,
        entry: str = "main",
        max_cycles: int = 500_000_000,
        fault_plan: Optional[FaultPlan] = None,
        delay_fences: Optional[frozenset] = None,
        engine: str = "batched",
    ):
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r} (known: {', '.join(ENGINES)})"
            )
        if num_procs > machine.max_procs:
            raise RuntimeFault(
                f"{num_procs} processors exceeds the {machine.name} "
                f"model's limit of {machine.max_procs}"
            )
        self.module = module
        self.num_procs = num_procs
        self.machine = machine
        self.entry = entry
        self.engine = engine
        self.max_cycles = max_cycles
        self.memory = GlobalMemory(module, num_procs)
        self.fault_plan = fault_plan
        #: instruction uids that must drain the store buffer before
        #: executing (targets of compiler-placed delay edges)
        self.delay_fences: frozenset = delay_fences or frozenset()
        model = validate_memory_model(machine.memory_model)
        self.weak: Optional[StoreBuffers] = None
        if model != "sc":
            self.weak = StoreBuffers(
                model,
                num_procs,
                seed=(seed << 8) ^ machine.drain_seed,
                window=machine.effective_drain_window,
                memory=self.memory,
            )
        self.network = Network(
            machine.wire_latency, machine.jitter, seed=seed,
            plan=fault_plan,
        )
        self.flags = FlagTable()
        self.locks = LockTable()
        self.topology: BarrierTopology = build_topology(machine, self)
        self.trace: Optional[ExecutionTrace] = (
            ExecutionTrace(num_procs) if trace else None
        )
        self.outstanding_stores = 0
        self.store_sync_waiters: List[int] = []
        #: sync records awaiting their lock/unlock pairing serial
        self._pending_lock: Dict[int, SyncRecord] = {}
        self._pending_unlock: Dict[int, SyncRecord] = {}
        # Event cores.  Only one is driven per run, but both exist so
        # the bound _push/_deliver below stay branch-free.
        self._events: List[Tuple[int, int, Tuple]] = []
        self._seq = itertools.count()
        self._calendar = CalendarQueue()
        self._links = LinkChannels()
        self._push: Callable[[int, tuple], None]
        self._deliver: Callable[[int, Message], None]
        if engine == "batched":
            self._push = self._calendar.push
            self._deliver = self._deliver_batched
        else:
            self._push = self._push_reference
            self._deliver = self._deliver_reference
        self._decoded_cache: Dict[str, Dict[str, List[Step]]] = {}
        self.procs = [Processor(pid, self) for pid in range(num_procs)]
        self._tags = itertools.count(1)
        self._done_count = 0
        self._trace_events: Dict[int, MemEvent] = {}
        #: reliability-protocol state (only populated under a fault plan)
        self._send_seq: Dict[Tuple[int, int], int] = {}
        self._unacked: Dict[Tuple[int, int], Dict[int, _Retransmit]] = {}
        self._recv_expected: Dict[Tuple[int, int], int] = {}
        self._recv_buffer: Dict[Tuple[int, int], Dict[int, Message]] = {}
        self._handlers: Dict[MsgKind, Callable[[int, Message], None]] = {
            MsgKind.GET_REQ: self._on_get_req,
            MsgKind.GET_REPLY: self._on_get_reply,
            MsgKind.PUT_REQ: self._on_put_req,
            MsgKind.PUT_ACK: self._on_put_ack,
            MsgKind.STORE_REQ: self._on_store_req,
            MsgKind.POST_REQ: self._on_post_req,
            MsgKind.WAIT_REQ: self._on_wait_req,
            MsgKind.WAIT_GRANT: self._on_grant,
            MsgKind.LOCK_REQ: self._on_lock_req,
            MsgKind.LOCK_GRANT: self._on_grant,
            MsgKind.UNLOCK_REQ: self._on_unlock_req,
            MsgKind.BARRIER_ARRIVE: self.topology.on_arrive,
            MsgKind.BARRIER_RELEASE: self.topology.on_release,
        }

    # -- infrastructure used by processors -----------------------------------

    def decoded(self, function: Function) -> Optional[Dict[str, List[Step]]]:
        """Decoded step lists for ``function`` (batched engine only)."""
        if self.engine != "batched":
            return None
        code = self._decoded_cache.get(function.name)
        if code is None:
            code = decode_function(
                function, self.machine, self.delay_fences, sim=self,
            )
            self._decoded_cache[function.name] = code
        return code

    def new_tag(self) -> int:
        return next(self._tags)

    def location_of(self, var: str, indices: Tuple[int, ...]):
        shared = self.memory.var(var)
        flat = flat_index(shared, indices) if shared.dims else 0
        return (var, flat)

    def send(self, msg: Message, now: int,
             trace_event: Optional[MemEvent] = None) -> None:
        if trace_event is not None:
            self._trace_events[id(msg)] = trace_event
        if self.fault_plan is None:
            self._deliver(self.network.send(msg, now), msg)
            return
        # Reliable path: wrap in a sequence-numbered envelope; the
        # receiver delivers per-link traffic in seq order, restoring
        # point-to-point FIFO above the lossy wire.
        link = (msg.src, msg.dst)
        seq = self._send_seq.get(link, 0)
        self._send_seq[link] = seq + 1
        msg.seq = seq
        record = _Retransmit(msg=msg)
        self._unacked.setdefault(link, {})[seq] = record
        self._transmit(record, now)

    # -- reliability protocol (fault plans only) ---------------------------

    def _transmit(self, record: _Retransmit, now: int) -> None:
        """One physical transmission attempt plus its timeout timer."""
        record.attempts += 1
        msg = record.msg
        arrivals = self.network.transmit(
            msg, now, retransmission=record.attempts > 1
        )
        for arrival in arrivals:
            self._push(arrival, ("xport", msg))
        timeout = self.machine.retransmit_timeout(
            record.attempts, self.fault_plan.spike_cycles
        )
        self._push(now + timeout, ("retx", ((msg.src, msg.dst), msg.seq)))

    def _handle_retx(self, now: int, link: Tuple[int, int],
                     seq: int) -> None:
        record = self._unacked.get(link, {}).get(seq)
        if record is None:
            return  # acked in the meantime; stale timer
        plan = self.fault_plan
        if record.attempts > plan.retry_cap:
            msg = record.msg
            raise NetworkFault(
                f"P{msg.src}: {msg.kind.value} to P{msg.dst} "
                f"undeliverable after {record.attempts} transmissions "
                f"(seq {seq}, retry cap {plan.retry_cap}); "
                + self.network.describe_link(link)
                + (
                    "; link currently partitioned"
                    if plan.partitioned(link[0], link[1], now) else ""
                ),
                undeliverable=msg,
                link=link,
                attempts=record.attempts,
                link_stats=self.network.link_stats.get(link),
            )
        self._transmit(record, now)

    def _handle_xport(self, now: int, msg: Message) -> None:
        """Transport arrival: deduplicate, deliver in seq order, ack."""
        link = (msg.src, msg.dst)
        expected = self._recv_expected.get(link, 0)
        buffer = self._recv_buffer.setdefault(link, {})
        if msg.seq < expected or msg.seq in buffer:
            self.network.stats.duplicates_suppressed += 1
        else:
            buffer[msg.seq] = msg
            while expected in buffer:
                ready = buffer.pop(expected)
                expected += 1
                self._recv_expected[link] = expected
                self._handle_message(now, ready)
        # Always ack — the sender may be retransmitting because our
        # previous ack was lost.  ``tag`` echoes the received seq;
        # ``counter`` carries the cumulative in-order floor, so any
        # later ack on the link also clears an envelope whose own acks
        # all died (without it, one envelope fails once ~11 independent
        # coin flips go wrong — far too often across a whole campaign).
        ack = Message(MsgKind.NET_ACK, src=msg.dst, dst=msg.src,
                      tag=msg.seq,
                      counter=self._recv_expected.get(link, 0) - 1)
        for arrival in self.network.transmit(ack, now):
            self._push(arrival, ("xack", ack))

    def _handle_xack(self, msg: Message) -> None:
        link = (msg.dst, msg.src)  # ack flows opposite the data
        records = self._unacked.get(link, {})
        record = records.pop(msg.tag, None)
        if record is not None:
            self.network.stats.record_retries(record.attempts)
        # Cumulative part: everything at or below the receiver's
        # in-order floor has been delivered, whether or not its own
        # ack survived.
        floor = msg.counter
        if floor is not None:
            for seq in [s for s in records if s <= floor]:
                self.network.stats.record_retries(
                    records.pop(seq).attempts
                )

    def schedule_resume(self, pid: int, time: int) -> None:
        if self.fault_plan is not None:
            time = self.fault_plan.stalled_until(pid, time)
        self._push(time, ("resume", pid))

    def schedule_drain(self, pid: int, entry_id: int, time: int) -> None:
        """Queues a background store-buffer drain (weak models only)."""
        self._push(time, ("drain", pid, entry_id))

    def _push_reference(self, time: int, payload: Tuple) -> None:
        heapq.heappush(self._events, (time, next(self._seq), payload))

    def _deliver_reference(self, arrival: int, msg: Message) -> None:
        self._push(arrival, ("deliver", msg))

    def _deliver_batched(self, arrival: int, msg: Message) -> None:
        # Perfect-network FIFO bumps make per-link arrivals strictly
        # increasing, so the ring head always corresponds to the
        # earliest pending ("link", ring) event on the calendar.
        self._calendar.push(
            arrival, self._links.enqueue((msg.src, msg.dst), msg)
        )

    def proc_finished(self, proc: Processor) -> None:
        self._done_count += 1

    # -- synchronization grants ---------------------------------------------------

    def grant_wait(self, waiter: int, key: Tuple[str, int],
                   now: int) -> None:
        """Wakes a waiter whose flag was just posted (from the home node)."""
        home = self.memory.owner(key[0], self._key_indices(key))
        if waiter == home:
            self.procs[waiter].wake(now + self.machine.remote_handle)
        else:
            self.send(
                Message(
                    MsgKind.WAIT_GRANT, src=home, dst=waiter,
                    var=key[0], indices=self._key_indices(key),
                ),
                now,
            )

    def grant_lock(self, next_holder: int, key: Tuple[str, int],
                   now: int) -> None:
        record = self._pending_lock.pop(next_holder, None)
        if record is not None:
            # The handoff follows the release that just happened.
            record.serial = self.locks.release_serial(key)
        home = self.memory.owner(key[0], self._key_indices(key))
        if next_holder == home:
            self.procs[next_holder].wake(now + self.machine.remote_handle)
        else:
            self.send(
                Message(
                    MsgKind.LOCK_GRANT, src=home, dst=next_holder,
                    var=key[0], indices=self._key_indices(key),
                ),
                now,
            )

    def _key_indices(self, key: Tuple[str, int]) -> Tuple[int, ...]:
        var = self.memory.var(key[0])
        if not var.dims:
            return ()
        # Unflatten the leading index (enough for ownership).
        trailing = 1
        for extent in var.dims[1:]:
            trailing *= extent
        lead = key[1] // trailing
        rest = key[1] % trailing
        indices = [lead]
        for extent in var.dims[1:]:
            trailing //= extent
            indices.append(rest // trailing if trailing else rest)
            rest = rest % trailing if trailing else 0
        return tuple(indices)

    # -- message handling -----------------------------------------------------------

    def _handle_message(self, arrival: int, msg: Message) -> None:
        """Dispatches one delivered logical message to its handler."""
        handler = self._handlers.get(msg.kind)
        if handler is None:
            raise RuntimeFault(f"unhandled message kind {msg.kind}")
        handler(arrival, msg)

    def _on_get_req(self, arrival: int, msg: Message) -> None:
        machine = self.machine
        value = self.memory.read(msg.var, msg.indices)
        owner = self.procs[msg.dst]
        owner.stolen += machine.remote_handle
        reply = Message(
            MsgKind.GET_REPLY,
            src=msg.dst,
            dst=msg.src,
            var=msg.var,
            value=value,
            dest_temp=msg.dest_temp,
            local_array=msg.local_array,
            local_flat=msg.local_flat,
            counter=msg.counter,
            tag=msg.tag,
        )
        event = self._trace_events.pop(id(msg), None)
        self.send(reply, arrival + machine.remote_handle,
                  trace_event=event)

    def _on_get_reply(self, arrival: int, msg: Message) -> None:
        machine = self.machine
        proc = self.procs[msg.dst]
        if not proc.frames:
            # The processor already returned; the fetched value has
            # no landing pad left (legal only for dead gets).
            event = self._trace_events.pop(id(msg), None)
            if event is not None:
                event.value = msg.value
            return
        if msg.local_array is not None:
            proc.frames[-1].arrays[msg.local_array][msg.local_flat] = (
                msg.value
            )
        else:
            proc.frames[-1].regs[msg.dest_temp] = msg.value
        event = self._trace_events.pop(id(msg), None)
        if event is not None:
            event.value = msg.value
        if msg.counter is not None:
            self._complete_counter(proc, msg.counter, arrival)
        else:
            proc.wake(arrival + machine.recv_overhead)

    def _on_put_req(self, arrival: int, msg: Message) -> None:
        machine = self.machine
        self.memory.write(msg.var, msg.indices, msg.value)
        owner = self.procs[msg.dst]
        owner.stolen += machine.remote_handle
        self.send(
            Message(
                MsgKind.PUT_ACK,
                src=msg.dst,
                dst=msg.src,
                counter=msg.counter,
                tag=msg.tag,
            ),
            arrival + machine.remote_handle,
        )

    def _on_put_ack(self, arrival: int, msg: Message) -> None:
        proc = self.procs[msg.dst]
        if msg.counter is not None:
            self._complete_counter(proc, msg.counter, arrival)
        else:
            proc.wake(arrival + self.machine.recv_overhead)

    def _on_store_req(self, arrival: int, msg: Message) -> None:
        self.memory.write(msg.var, msg.indices, msg.value)
        self.procs[msg.dst].stolen += self.machine.remote_handle
        self.outstanding_stores -= 1
        self._check_store_drain(arrival)

    def _on_post_req(self, arrival: int, msg: Message) -> None:
        machine = self.machine
        for waiter in self.flags.post(self.location_of(msg.var,
                                                       msg.indices)):
            self.grant_wait(waiter, self.location_of(msg.var, msg.indices),
                            arrival + machine.remote_handle)
        self.procs[msg.dst].stolen += machine.remote_handle
        self.send(
            Message(MsgKind.PUT_ACK, src=msg.dst, dst=msg.src,
                    tag=msg.tag),
            arrival + machine.remote_handle,
        )

    def _on_wait_req(self, arrival: int, msg: Message) -> None:
        machine = self.machine
        key = self.location_of(msg.var, msg.indices)
        self.procs[msg.dst].stolen += machine.remote_handle
        if self.flags.is_posted(key):
            self.send(
                Message(MsgKind.WAIT_GRANT, src=msg.dst, dst=msg.src,
                        var=msg.var, indices=msg.indices),
                arrival + machine.remote_handle,
            )
        else:
            self.flags.add_waiter(key, msg.src)

    def _on_grant(self, arrival: int, msg: Message) -> None:
        """WAIT_GRANT / LOCK_GRANT: wake the granted processor."""
        self.procs[msg.dst].wake(arrival + self.machine.recv_overhead)

    def _on_lock_req(self, arrival: int, msg: Message) -> None:
        machine = self.machine
        key = self.location_of(msg.var, msg.indices)
        self.procs[msg.dst].stolen += machine.remote_handle
        if self.locks.acquire(key, msg.src):
            record = self._pending_lock.pop(msg.src, None)
            if record is not None:
                record.serial = self.locks.release_serial(key)
            self.send(
                Message(MsgKind.LOCK_GRANT, src=msg.dst, dst=msg.src,
                        var=msg.var, indices=msg.indices),
                arrival + machine.remote_handle,
            )

    def _on_unlock_req(self, arrival: int, msg: Message) -> None:
        machine = self.machine
        key = self.location_of(msg.var, msg.indices)
        self.procs[msg.dst].stolen += machine.remote_handle
        next_holder = self.locks.release(key, msg.src)
        record = self._pending_unlock.pop(msg.src, None)
        if record is not None:
            record.serial = self.locks.release_serial(key)
        if next_holder is not None:
            self.grant_lock(next_holder, key,
                            arrival + machine.remote_handle)
        self.send(
            Message(MsgKind.PUT_ACK, src=msg.dst, dst=msg.src,
                    tag=msg.tag),
            arrival + machine.remote_handle,
        )

    def _complete_counter(self, proc: Processor, counter: int,
                          arrival: int) -> None:
        count = proc.counters.get(counter, 0)
        if count <= 0:
            raise RuntimeFault(
                f"P{proc.pid}: counter {counter} completion underflow"
            )
        proc.counters[counter] = count - 1
        if (
            proc.state is ProcState.BLOCKED
            and proc.block_reason == ("counter", counter)
            and proc.counters[counter] == 0
        ):
            # The sync_ctr re-executes on wake and now falls through.
            proc.wake(arrival + self.machine.recv_overhead)
        else:
            proc.stolen += self.machine.recv_overhead

    def _check_store_drain(self, now: int) -> None:
        if self.outstanding_stores:
            return
        self.topology.maybe_release(now)
        if self.store_sync_waiters:
            waiters, self.store_sync_waiters = self.store_sync_waiters, []
            for pid in waiters:
                self.procs[pid].wake(now)

    # -- deadlock forensics ---------------------------------------------------------

    def _describe_block_reason(self, proc: Processor) -> str:
        """A human-readable account of why ``proc`` is parked."""
        reason = proc.block_reason
        if reason is None:
            return "nothing (ready)"
        kind = reason[0]
        if kind == "counter":
            outstanding = proc.counters.get(reason[1], 0)
            return (
                f"sync_ctr #{reason[1]} "
                f"({outstanding} completion(s) outstanding)"
            )
        if kind == "store_sync":
            return (
                f"all_store_sync ({self.outstanding_stores} one-way "
                "store(s) undrained)"
            )
        if kind == "reply":
            return f"a reply with tag {reason[1]}"
        if kind == "wait":
            var, flat = reason[1]
            return f"wait {var}[{flat}]"
        if kind == "lock":
            var, flat = reason[1]
            holder = self.locks.holder(reason[1])
            held = f" held by P{holder}" if holder is not None else ""
            return f"lock {var}[{flat}]{held}"
        if kind == "barrier":
            return self.topology.describe_block()
        return repr(reason)

    def deadlock_report(self) -> str:
        """Multi-line forensics: processors, sync objects, network."""
        lines = ["processors:"]
        for proc in self.procs:
            if proc.state is ProcState.DONE:
                lines.append(
                    f"  P{proc.pid}: done "
                    f"(clock {proc.clock}, {proc.instructions} instrs)"
                )
                continue
            if proc.frames:
                frame = proc.frames[-1]
                pc = f"{frame.function.name}:{frame.block}+{frame.index}"
            else:
                pc = "<no frame>"
            lines.append(
                f"  P{proc.pid}: {proc.state.value} at {pc} on "
                f"{self._describe_block_reason(proc)} "
                f"(clock {proc.clock}, {proc.instructions} instrs)"
            )
        lines.append("sync objects:")
        posted = self.flags.posted_keys()
        lines.append(
            "  flags posted: "
            + (", ".join(f"{v}[{f}]" for v, f in posted) if posted
               else "none")
        )
        for key, pids in self.flags.waiting().items():
            waiters = ", ".join(f"P{pid}" for pid in pids)
            lines.append(f"  flag {key[0]}[{key[1]}] awaited by {waiters}")
        for key, (holder, queue) in self.locks.held().items():
            queued = (
                " (queue: " + ", ".join(f"P{p}" for p in queue) + ")"
                if queue else ""
            )
            lines.append(
                f"  lock {key[0]}[{key[1]}] held by P{holder}{queued}"
            )
        lines.extend(self.topology.forensics())
        lines.append("network:")
        lines.append(
            f"  in-flight message copies: {self.network.in_flight}"
        )
        lines.append(
            f"  outstanding one-way stores: {self.outstanding_stores}"
        )
        unacked = [
            (link, seq, record)
            for link, records in sorted(self._unacked.items())
            for seq, record in sorted(records.items())
        ]
        if unacked:
            for link, seq, record in unacked:
                lines.append(
                    f"  unacked envelope {link[0]}->{link[1]} seq {seq}"
                    f" ({record.msg.kind.value}, "
                    f"{record.attempts} transmission(s))"
                )
        elif self.fault_plan is not None:
            lines.append("  unacked envelopes: none")
        return "\n".join(lines)

    # -- main loop ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        if self.engine == "batched":
            return self._run_batched()
        return self._run_reference()

    def _run_reference(self) -> SimulationResult:
        """The seed event loop: one flat heap, one event per pop."""
        for pid in range(self.num_procs):
            self.schedule_resume(pid, 0)
        while self._events:
            time, _seq, payload = heapq.heappop(self._events)
            tag = payload[0]
            if tag == "resume":
                proc = self.procs[payload[1]]
                if proc.state is ProcState.DONE:
                    continue
                proc.advance(time)
            elif tag == "deliver":
                self.network.delivered()
                self._handle_message(time, payload[1])
            elif tag == "xport":
                self.network.delivered()
                self._handle_xport(time, payload[1])
            elif tag == "xack":
                self.network.delivered()
                self._handle_xack(payload[1])
            elif tag == "drain":
                self.weak.drain(payload[1], payload[2])
            else:  # "retx"
                self._handle_retx(time, *payload[1])
        return self._finish()

    def _run_batched(self) -> SimulationResult:
        """Calendar-queue loop: one heap pop per *timestamp*, with all
        same-time events dispatched in insertion order (identical to
        the reference heap's seq tie-break) and pushes landing on the
        live batch mid-dispatch."""
        for pid in range(self.num_procs):
            self.schedule_resume(pid, 0)
        calendar = self._calendar
        procs = self.procs
        network = self.network
        weak = self.weak
        while calendar.times:
            time, batch = calendar.pop_batch()
            i = 0
            while i < len(batch):
                payload = batch[i]
                i += 1
                tag = payload[0]
                if tag == "link":
                    network.delivered()
                    self._handle_message(time, payload[1].popleft())
                elif tag == "resume":
                    proc = procs[payload[1]]
                    if proc.state is not ProcState.DONE:
                        proc.advance_fast(time)
                elif tag == "drain":
                    weak.drain(payload[1], payload[2])
                elif tag == "xport":
                    network.delivered()
                    self._handle_xport(time, payload[1])
                elif tag == "xack":
                    network.delivered()
                    self._handle_xack(payload[1])
                else:  # "retx"
                    self._handle_retx(time, *payload[1])
            calendar.retire(time)
        return self._finish()

    def _finish(self) -> SimulationResult:
        if self._done_count != self.num_procs:
            blocked = [
                f"P{p.pid} blocked on {self._describe_block_reason(p)}"
                for p in self.procs
                if p.state is ProcState.BLOCKED
            ]
            raise DeadlockError(
                "simulation stalled with no events pending: "
                + ("; ".join(blocked) if blocked else "no blocked procs?"),
                report=self.deadlock_report(),
            )
        if self.weak is not None:
            # Normally every buffered write's drain event has already
            # fired; a final flush keeps snapshots total regardless.
            self.weak.flush_all()
        return SimulationResult(
            cycles=max(p.clock for p in self.procs),
            per_proc_cycles=[p.clock for p in self.procs],
            per_proc_wait=[p.wait_cycles for p in self.procs],
            instructions=sum(p.instructions for p in self.procs),
            memory=self.memory,
            network=self.network,
            trace=self.trace,
            weak_stats=(
                self.weak.stats.as_dict() if self.weak is not None else None
            ),
        )


def run_module(
    module: Module,
    num_procs: int,
    machine: MachineConfig,
    seed: int = 0,
    trace: bool = False,
    max_cycles: int = 500_000_000,
    fault_plan: Optional[FaultPlan] = None,
    delay_fences: Optional[frozenset] = None,
    engine: str = "batched",
) -> SimulationResult:
    """Convenience wrapper: simulate ``module`` to completion."""
    sim = Simulator(
        module, num_procs, machine, seed=seed, trace=trace,
        max_cycles=max_cycles, fault_plan=fault_plan,
        delay_fences=delay_fences, engine=engine,
    )
    return sim.run()
