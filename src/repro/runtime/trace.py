"""Execution traces and the order-maintenance precedence oracle.

When tracing is enabled the simulator records, per processor and in
*program (issue) order*, every data access to shared memory along with
the value it read or wrote, and every synchronization operation
(post/wait, lock/unlock, barrier).  The checker
(:mod:`repro.runtime.consistency`) then decides whether some total order
explains the trace — the system contract of §3.

Precedence oracle
-----------------

The seed answered "does event *a* happen before event *b*?" by
rescanning history, which is quadratic over a trace and useless at
256-1024 processors.  :class:`PrecedenceOracle` instead replays the
sync records once, topologically, and labels each segment of each
processor's timeline with an **(epoch, frontier)** clock in the spirit
of DePa's order-maintenance labels (Westrick et al.) specialized to
this language's sync structure:

* the **epoch** counts completed barrier generations.  A barrier is a
  full join, so after barrier ``g`` a processor's cross-processor
  knowledge is exactly "everything up to each processor's generation-g
  arrival" — one shared ``epoch_pos[g]`` table, no per-processor
  vectors;
* the **frontier** is a sparse map ``proc -> position`` of knowledge
  acquired *since* the last barrier through post→wait and
  unlock→lock joins (transitive: a publisher's clock already folds in
  its own joins).  Barriers clear it.

``precedes(pa, ia, pb, ib)`` is then O(log segments) — a bisect to
find ``(pb, ib)``'s segment plus two dict probes — instead of a trace
rescan.  Replay pairs syncs structurally, not by timestamp: flags by
key (posting twice is illegal, so a key names its post), locks by the
release serial the runtime's :class:`~repro.runtime.sync_objects.LockTable`
stamps on each unlock→acquire handoff, barriers by per-processor
generation number.  A trace whose sync records cannot be replayed
(e.g. a hand-built trace that deadlocks) yields an incomplete oracle:
``topological_events()`` returns ``None`` and ``precedes`` degrades to
an under-approximation, which consumers treat as "unknown".
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

Value = Union[int, float]

#: A memory location: (shared variable name, flat element index).
Location = Tuple[str, int]


@dataclass
class MemEvent:
    """One shared-memory data access as observed by its processor."""

    proc: int
    op: str  # "r" or "w"
    location: Location
    value: Optional[Value] = None  # reads are filled in on completion
    #: uid of the originating instruction.  Split-phase conversion and
    #: reuse keep the source access's uid, so for straight-line code,
    #: sorting a processor's events by uid recovers *source* program
    #: order even after initiation-reordering transformations.
    uid: int = 0
    #: True when a weak-memory read was satisfied from the issuing
    #: processor's own store buffer (store-to-load forwarding).
    forwarded: bool = False
    #: Issue-order position on the owning processor's timeline; data
    #: and sync records share one position space, which is what lets
    #: the precedence oracle bisect a data event into a sync segment.
    pos: int = 0

    def __str__(self) -> str:
        name, flat = self.location
        return f"P{self.proc}:{self.op} {name}[{flat}]={self.value}"


@dataclass
class SyncRecord:
    """One synchronization operation on a processor's timeline."""

    proc: int
    pos: int
    kind: str  # "post" | "wait" | "lock" | "unlock" | "barrier"
    #: flag/lock element for post/wait/lock/unlock; None for barriers.
    key: Optional[Location] = None
    #: pairing serial: for lock, the release serial observed at grant
    #: (0 = first acquisition); for unlock, the serial of this release
    #: (1-based); for barrier, the processor's generation number.
    serial: int = 0
    uid: int = 0


class ExecutionTrace:
    """Per-processor program-order event and sync-record lists."""

    def __init__(self, num_procs: int):
        self.per_proc: List[List[MemEvent]] = [[] for _ in range(num_procs)]
        self.sync_per_proc: List[List[SyncRecord]] = [
            [] for _ in range(num_procs)
        ]
        self._positions: List[int] = [0] * num_procs

    def _next_pos(self, proc: int) -> int:
        pos = self._positions[proc]
        self._positions[proc] = pos + 1
        return pos

    def record_write(self, proc: int, location: Location,
                     value: Value, uid: int = 0) -> MemEvent:
        event = MemEvent(proc, "w", location, value, uid,
                         pos=self._next_pos(proc))
        self.per_proc[proc].append(event)
        return event

    def record_read_issue(self, proc: int, location: Location,
                          uid: int = 0) -> MemEvent:
        """Appends a read in issue order; value filled on completion."""
        event = MemEvent(proc, "r", location, uid=uid,
                         pos=self._next_pos(proc))
        self.per_proc[proc].append(event)
        return event

    def record_sync(self, proc: int, kind: str,
                    key: Optional[Location] = None,
                    serial: int = 0, uid: int = 0) -> SyncRecord:
        record = SyncRecord(proc, self._next_pos(proc), kind, key,
                            serial, uid)
        self.sync_per_proc[proc].append(record)
        return record

    def source_ordered(self) -> "ExecutionTrace":
        """A copy with each processor's timeline sorted by source uid.

        Valid for straight-line (per-processor loop-free) programs:
        uids are assigned in lowering order, and the optimizer keeps
        them stable, so this undoes initiation reordering and lets the
        SC checker judge the *source* program order.  Sync records ride
        along (they carry their instruction uid too) and positions are
        reassigned so the precedence oracle sees a consistent timeline.
        """
        clone = ExecutionTrace(len(self.per_proc))
        for proc, events in enumerate(self.per_proc):
            merged: List[Tuple[int, int, object]] = [
                (e.uid, e.pos, e) for e in events
            ]
            merged.extend(
                (r.uid, r.pos, r) for r in self.sync_per_proc[proc]
            )
            merged.sort(key=lambda item: (item[0], item[1]))
            for pos, (_, _, item) in enumerate(merged):
                if isinstance(item, MemEvent):
                    clone.per_proc[proc].append(
                        MemEvent(item.proc, item.op, item.location,
                                 item.value, item.uid, item.forwarded,
                                 pos)
                    )
                else:
                    clone.sync_per_proc[proc].append(
                        SyncRecord(item.proc, pos, item.kind, item.key,
                                   item.serial, item.uid)
                    )
            clone._positions[proc] = len(merged)
        return clone

    def all_events(self) -> List[MemEvent]:
        return [event for events in self.per_proc for event in events]

    def total_length(self) -> int:
        return sum(len(events) for events in self.per_proc)


class _StuckReplay(Exception):
    """Internal: the sync records cannot be topologically replayed."""


class PrecedenceOracle:
    """Near-O(1) happens-before queries over a traced execution.

    Built once per trace (one topological replay of the sync records,
    linear in trace size); :meth:`precedes` then answers in a bisect
    plus two dict probes.  See the module docstring for the clock
    design and :meth:`topological_events` for the hb-consistent total
    order the SC fast path consumes.
    """

    def __init__(self, trace: ExecutionTrace):
        self.trace = trace
        self.num_procs = len(trace.per_proc)
        n = self.num_procs
        #: per proc: positions where a new clock segment begins
        self.seg_starts: List[List[int]] = [[0] for _ in range(n)]
        #: per proc: (epoch, frontier) in force from the matching start
        self.seg_clocks: List[List[Tuple[int, Dict[int, int]]]] = [
            [(0, {})] for _ in range(n)
        ]
        #: epoch_pos[g][p] = p's position at its generation-g barrier
        self.epoch_pos: List[Dict[int, int]] = []
        self.complete = False
        self._topo: List[MemEvent] = []
        self._replay()

    # -- construction ------------------------------------------------------

    def _replay(self) -> None:
        trace = self.trace
        n = self.num_procs
        sync = trace.sync_per_proc
        data = trace.per_proc
        idx = [0] * n
        emit_idx = [0] * n
        epoch = [0] * n
        frontier: List[Dict[int, int]] = [{} for _ in range(n)]
        published = [False] * n
        flag_clock: Dict[Location, Tuple[int, Dict[int, int]]] = {}
        lock_clock: Dict[
            Tuple[Location, int], Tuple[int, Dict[int, int]]
        ] = {}
        barrier_count: Dict[int, int] = {}
        topo = self._topo

        def emit_until(p: int, limit: int) -> None:
            events = data[p]
            i = emit_idx[p]
            while i < len(events) and events[i].pos < limit:
                topo.append(events[i])
                i += 1
            emit_idx[p] = i

        def own_clock(p: int, pos: int) -> Tuple[int, Dict[int, int]]:
            fr = dict(frontier[p])
            if pos > fr.get(p, -1):
                fr[p] = pos
            return (epoch[p], fr)

        def join(p: int, pos: int,
                 clock: Tuple[int, Dict[int, int]]) -> None:
            pub_epoch, pub_frontier = clock
            if pub_epoch > epoch[p]:
                epoch[p] = pub_epoch
            merged = dict(frontier[p])
            for q, qpos in pub_frontier.items():
                if qpos > merged.get(q, -1):
                    merged[q] = qpos
            frontier[p] = merged
            self.seg_starts[p].append(pos)
            self.seg_clocks[p].append((epoch[p], merged))

        def complete_barrier(gen: int) -> None:
            # Every processor is parked at its generation-`gen` record
            # (a pointer cannot pass an incomplete barrier), so the
            # whole generation joins atomically — which also keeps the
            # emitted order topological: all pre-barrier data lands
            # before any post-barrier data.
            for q in range(n):
                if idx[q] >= len(sync[q]):
                    raise _StuckReplay
                record = sync[q][idx[q]]
                if record.kind != "barrier" or record.serial != gen:
                    raise _StuckReplay
                emit_until(q, record.pos)
                epoch[q] = gen + 1
                frontier[q] = {}
                self.seg_starts[q].append(record.pos)
                self.seg_clocks[q].append((gen + 1, {}))
                idx[q] += 1
                published[q] = False

        progress = True
        while progress:
            progress = False
            for p in range(n):
                while idx[p] < len(sync[p]):
                    rec = sync[p][idx[p]]
                    kind = rec.kind
                    if kind == "post":
                        emit_until(p, rec.pos)
                        flag_clock[rec.key] = own_clock(p, rec.pos)
                    elif kind == "unlock":
                        emit_until(p, rec.pos)
                        lock_clock[(rec.key, rec.serial)] = own_clock(
                            p, rec.pos
                        )
                    elif kind == "wait":
                        clock = flag_clock.get(rec.key)
                        if clock is None:
                            break
                        emit_until(p, rec.pos)
                        join(p, rec.pos, clock)
                    elif kind == "lock":
                        if rec.serial > 0:
                            clock = lock_clock.get((rec.key, rec.serial))
                            if clock is None:
                                break
                            emit_until(p, rec.pos)
                            join(p, rec.pos, clock)
                        else:
                            emit_until(p, rec.pos)
                    elif kind == "barrier":
                        gen = rec.serial
                        if not published[p]:
                            while len(self.epoch_pos) <= gen:
                                self.epoch_pos.append({})
                            self.epoch_pos[gen][p] = rec.pos
                            barrier_count[gen] = (
                                barrier_count.get(gen, 0) + 1
                            )
                            published[p] = True
                            progress = True
                        if barrier_count.get(gen, 0) < n:
                            break
                        try:
                            complete_barrier(gen)
                        except _StuckReplay:
                            self._topo = []
                            return
                        progress = True
                        continue
                    else:
                        self._topo = []
                        return
                    idx[p] += 1
                    published[p] = False
                    progress = True

        self.complete = all(
            idx[p] == len(sync[p]) for p in range(n)
        )
        if self.complete:
            for p in range(n):
                if data[p]:
                    emit_until(p, data[p][-1].pos + 1)
        else:
            self._topo = []

    # -- queries -----------------------------------------------------------

    def precedes(self, proc_a: int, pos_a: int,
                 proc_b: int, pos_b: int) -> bool:
        """True when (proc_a, pos_a) happens-before (proc_b, pos_b).

        Exact for traces whose sync records replay completely; an
        under-approximation (may answer False for ordered pairs, never
        the reverse) otherwise.  Same-generation barrier records of
        different processors count as mutually ordered — they are one
        synchronization episode.
        """
        if proc_a == proc_b:
            return pos_a < pos_b
        starts = self.seg_starts[proc_b]
        seg = bisect_right(starts, pos_b) - 1
        seg_epoch, seg_frontier = self.seg_clocks[proc_b][seg]
        if pos_a <= seg_frontier.get(proc_a, -1):
            return True
        return (
            seg_epoch > 0
            and pos_a <= self.epoch_pos[seg_epoch - 1].get(proc_a, -1)
        )

    def ordered(self, a: MemEvent, b: MemEvent) -> bool:
        """Happens-before over data events, in either direction."""
        return (
            self.precedes(a.proc, a.pos, b.proc, b.pos)
            or self.precedes(b.proc, b.pos, a.proc, a.pos)
        )

    def topological_events(self) -> Optional[List[MemEvent]]:
        """All data events in an hb-consistent total order, or ``None``
        when the sync records did not replay to completion."""
        if not self.complete:
            return None
        return list(self._topo)
