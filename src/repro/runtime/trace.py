"""Execution traces for sequential-consistency checking.

When tracing is enabled the simulator records, per processor and in
*program (issue) order*, every data access to shared memory along with
the value it read or wrote.  The checker
(:mod:`repro.runtime.consistency`) then decides whether some total order
explains the trace — the system contract of §3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

Value = Union[int, float]

#: A memory location: (shared variable name, flat element index).
Location = Tuple[str, int]


@dataclass
class MemEvent:
    """One shared-memory data access as observed by its processor."""

    proc: int
    op: str  # "r" or "w"
    location: Location
    value: Optional[Value] = None  # reads are filled in on completion
    #: uid of the originating instruction.  Split-phase conversion and
    #: reuse keep the source access's uid, so for straight-line code,
    #: sorting a processor's events by uid recovers *source* program
    #: order even after initiation-reordering transformations.
    uid: int = 0
    #: True when a weak-memory read was satisfied from the issuing
    #: processor's own store buffer (store-to-load forwarding).
    forwarded: bool = False

    def __str__(self) -> str:
        name, flat = self.location
        return f"P{self.proc}:{self.op} {name}[{flat}]={self.value}"


class ExecutionTrace:
    """Per-processor program-order event lists."""

    def __init__(self, num_procs: int):
        self.per_proc: List[List[MemEvent]] = [[] for _ in range(num_procs)]

    def record_write(self, proc: int, location: Location,
                     value: Value, uid: int = 0) -> MemEvent:
        event = MemEvent(proc, "w", location, value, uid)
        self.per_proc[proc].append(event)
        return event

    def record_read_issue(self, proc: int, location: Location,
                          uid: int = 0) -> MemEvent:
        """Appends a read in issue order; value filled on completion."""
        event = MemEvent(proc, "r", location, uid=uid)
        self.per_proc[proc].append(event)
        return event

    def source_ordered(self) -> "ExecutionTrace":
        """A copy with each processor's events sorted by source uid.

        Valid for straight-line (per-processor loop-free) programs:
        uids are assigned in lowering order, and the optimizer keeps
        them stable, so this undoes initiation reordering and lets the
        SC checker judge the *source* program order.
        """
        clone = ExecutionTrace(len(self.per_proc))
        for proc, events in enumerate(self.per_proc):
            clone.per_proc[proc] = sorted(events, key=lambda e: e.uid)
        return clone

    def all_events(self) -> List[MemEvent]:
        return [event for events in self.per_proc for event in events]

    def total_length(self) -> int:
        return sum(len(events) for events in self.per_proc)
