"""Distributed-memory machine simulator.

The execution substrate standing in for the paper's CM-5: per-processor
cycle clocks, a latency/overhead network model (Table 1 presets),
split-phase memory operations with synchronizing counters, one-way
stores drained at barriers, and homed flag/lock/barrier synchronization.
"""

from repro.runtime.consistency import (
    find_violation_witness,
    is_sequentially_consistent,
)
from repro.runtime.events import CalendarQueue, LinkChannels
from repro.runtime.machine import (
    BARRIER_TOPOLOGIES,
    CM5,
    DASH,
    MACHINES,
    T3D,
    MachineConfig,
    get_machine,
    validate_barrier_topology,
    validate_tree_fanin,
)
from repro.runtime.memory import GlobalMemory
from repro.runtime.network import (
    FaultPlan,
    LinkPartition,
    LinkStats,
    Message,
    MsgKind,
    Network,
    NetworkStats,
    StallWindow,
)
from repro.runtime.simulator import (
    ENGINES,
    ProcState,
    Processor,
    SimulationResult,
    Simulator,
    run_module,
)
from repro.runtime.topology import (
    BarrierTopology,
    CentralBarrier,
    SenseBarrier,
    TreeBarrier,
    build_topology,
)
from repro.runtime.trace import ExecutionTrace, MemEvent, PrecedenceOracle, SyncRecord

__all__ = [
    "MachineConfig",
    "get_machine",
    "MACHINES",
    "CM5",
    "T3D",
    "DASH",
    "BARRIER_TOPOLOGIES",
    "validate_barrier_topology",
    "validate_tree_fanin",
    "BarrierTopology",
    "CentralBarrier",
    "SenseBarrier",
    "TreeBarrier",
    "build_topology",
    "CalendarQueue",
    "LinkChannels",
    "ENGINES",
    "GlobalMemory",
    "Network",
    "NetworkStats",
    "FaultPlan",
    "LinkPartition",
    "LinkStats",
    "StallWindow",
    "Message",
    "MsgKind",
    "Simulator",
    "Processor",
    "ProcState",
    "SimulationResult",
    "run_module",
    "ExecutionTrace",
    "MemEvent",
    "SyncRecord",
    "PrecedenceOracle",
    "is_sequentially_consistent",
    "find_violation_witness",
]
