"""Threaded-code decoder for the batched engine's interpreter.

Profiling the seed runtime at 256 processors showed the event heap was
*not* the bottleneck: ~80% of wall time sat in ``Processor._execute``'s
giant opcode dispatch and its per-operand ``value()`` calls.  The
batched engine therefore decodes each function once per simulator into
**step closures** — one callable per entry point — and the advance
loop becomes ``r = steps[i](proc, frame, regs)`` with the closure
returning the next index (or ``-1`` = refetch frame/block, ``-2`` =
blocked/done).

Two tiers of steps:

* **Fused runs.**  Maximal straight-line sequences of *local* opcodes
  (const/move/binop/unop/intrinsic/local array traffic, plus a
  trailing jump/branch) are compiled to one generated-source function:
  operand loads become direct ``regs[...]`` accesses, temps written
  earlier in the run are cached in Python locals, the cycle cost of
  the whole run is added with a single ``proc.clock +=``.  Local ops
  never touch shared memory, the network, the store buffers or the
  trace, so fusing them is invisible to everything but wall time.

* **Slow steps.**  Every opcode with simulator-visible effects
  (shared accesses, split-phase traffic, synchronization, call/ret —
  and any instruction whose uid is a compiler-placed delay fence)
  funnels through the seed's ``Processor._execute`` unchanged, which
  keeps message formats, fence semantics, blocking behavior and trace
  recording bit-for-bit identical between engines.

Parity contract (pinned by the differential tests): for any program,
the decoded interpreter produces the same per-processor clocks,
instruction counts, message sequences and faults as the seed
``advance`` loop.  The subtleties that matter:

* reads of a temp that may hold a pending split-phase value
  (a non-fused ``get`` destination, or a load from a local array some
  fused ``get`` lands in) are guarded exactly like ``value()``;
* an undefined temp raises the seed's ``use of undefined temp``
  fault (the generated code catches ``KeyError`` from ``regs``);
* local-array bounds faults reproduce the seed message verbatim;
* the cycle-budget check moves from per-instruction to per-step —
  a runaway loop still faults (every loop crosses a block boundary,
  i.e. a step), merely a few cycles later.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Dict, List, Optional, Set

from repro.errors import RuntimeFault
from repro.ir.cfg import Function
from repro.ir.instructions import BinOpKind, Const, Instr, Opcode, UnOpKind
from repro.lang.types import Distribution, ScalarKind

Value = object


class _Pending:
    """Sentinel stored in a get's destination until the reply lands."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<pending>"


PENDING = _Pending()


def _binop(kind: BinOpKind, left, right):
    if kind is BinOpKind.ADD:
        return left + right
    if kind is BinOpKind.SUB:
        return left - right
    if kind is BinOpKind.MUL:
        return left * right
    if kind is BinOpKind.DIV:
        if isinstance(left, int) and isinstance(right, int):
            if right == 0:
                raise RuntimeFault("integer division by zero")
            return int(math.trunc(left / right))  # C-style truncation
        if right == 0:
            raise RuntimeFault("float division by zero")
        return left / right
    if kind is BinOpKind.MOD:
        if right == 0:
            raise RuntimeFault("modulo by zero")
        left_i, right_i = int(left), int(right)
        return left_i - int(math.trunc(left_i / right_i)) * right_i
    if kind is BinOpKind.EQ:
        return int(left == right)
    if kind is BinOpKind.NE:
        return int(left != right)
    if kind is BinOpKind.LT:
        return int(left < right)
    if kind is BinOpKind.LE:
        return int(left <= right)
    if kind is BinOpKind.GT:
        return int(left > right)
    if kind is BinOpKind.GE:
        return int(left >= right)
    if kind is BinOpKind.AND:
        return int(bool(left) and bool(right))
    if kind is BinOpKind.OR:
        return int(bool(left) or bool(right))
    raise RuntimeFault(f"unknown binop {kind}")  # pragma: no cover


def _intrinsic(name: str, args: List):
    if name == "min":
        return min(args)
    if name == "max":
        return max(args)
    if name == "abs":
        return abs(args[0])
    if name == "sqrt":
        return math.sqrt(args[0])
    if name == "floor":
        return int(math.floor(args[0]))
    if name == "exp":
        return math.exp(args[0])
    if name == "sin":
        return math.sin(args[0])
    if name == "cos":
        return math.cos(args[0])
    raise RuntimeFault(f"unknown intrinsic {name}")  # pragma: no cover


#: Opcodes the fuser may compile inline: purely local effects.
FAST_OPS = frozenset(
    {
        Opcode.CONST,
        Opcode.MOVE,
        Opcode.BINOP,
        Opcode.UNOP,
        Opcode.INTRINSIC,
        Opcode.LOAD_LOCAL,
        Opcode.STORE_LOCAL,
        Opcode.JUMP,
        Opcode.BRANCH,
    }
)

#: Blocking shared accesses the fuser may specialize when the run is
#: untraced and sequentially consistent: the owner test compiles
#: inline, the local-home case reads/writes backing storage directly,
#: and the remote case bails to the seed ``_execute`` path (which
#: blocks, so the resume entry compiled after each shared op picks the
#: run back up).
SHARED_OPS = frozenset({Opcode.READ_SHARED, Opcode.WRITE_SHARED})

#: Binop kinds whose semantics are type-independent enough to inline.
_INLINE_BINOPS: Dict[BinOpKind, str] = {
    BinOpKind.ADD: "({l} + {r})",
    BinOpKind.SUB: "({l} - {r})",
    BinOpKind.MUL: "({l} * {r})",
    BinOpKind.EQ: "int({l} == {r})",
    BinOpKind.NE: "int({l} != {r})",
    BinOpKind.LT: "int({l} < {r})",
    BinOpKind.LE: "int({l} <= {r})",
    BinOpKind.GT: "int({l} > {r})",
    BinOpKind.GE: "int({l} >= {r})",
    BinOpKind.AND: "int(bool({l}) and bool({r}))",
    BinOpKind.OR: "int(bool({l}) or bool({r}))",
}

#: Step-closure signature: (processor, frame, regs) -> next index,
#: -1 to refetch frame/block state, -2 when blocked or done.
Step = Callable[[object, object, Dict[str, Value]], int]


def _pending_temps(function: Function) -> Set[str]:
    """Temp names that may transiently hold the PENDING sentinel.

    Exactly two producers exist: a non-fused ``get``'s destination
    temp, and a ``load_local`` from an array some fused ``get`` uses as
    its landing pad (the load copies the sentinel without faulting,
    just like the seed interpreter).  Every other write goes through a
    checked read first, so nothing propagates further.
    """
    pending_arrays = set()
    for block in function.blocks:
        for ins in block.instrs:
            if ins.op is Opcode.GET and ins.local_array is not None:
                pending_arrays.add(ins.local_array)
    pending: Set[str] = set()
    for block in function.blocks:
        for ins in block.instrs:
            if (
                ins.op is Opcode.GET
                and ins.local_array is None
                and ins.dest is not None
            ):
                pending.add(ins.dest.name)
            elif (
                ins.op is Opcode.LOAD_LOCAL
                and ins.var in pending_arrays
            ):
                pending.add(ins.dest.name)
    return pending


def _unreachable(proc, frame, regs) -> int:  # pragma: no cover - guard
    raise RuntimeFault(
        f"P{proc.pid}: decoder entered the middle of a fused run at "
        f"{frame.block}+{frame.index}"
    )


class _RunCompiler:
    """Generates one fused-run step function as Python source."""

    def __init__(self, function: Function, machine, pending: Set[str],
                 sim=None):
        self.function = function
        self.machine = machine
        self.pending = pending
        self.sim = sim
        self.lines: List[str] = []
        self.locals = itertools.count()
        self.local_map: Dict[str, str] = {}
        self.array_map: Dict[str, str] = {}
        self.env: Dict[str, object] = {
            "RuntimeFault": RuntimeFault,
            "_Pending": _Pending,
            "_binop": _binop,
            "_intrinsic": _intrinsic,
        }
        self.cost = 0
        self.count = 0
        self.tail: List[str] = []
        self.result = "-1"

    def fresh(self) -> str:
        return f"v{next(self.locals)}"

    def emit(self, line: str) -> None:
        self.lines.append("        " + line)

    def const(self, value) -> str:
        """Binds a non-literal constant into the exec namespace."""
        name = f"c{next(self.locals)}"
        self.env[name] = value
        return name

    # -- operand access ----------------------------------------------------

    def read(self, operand) -> str:
        if isinstance(operand, Const):
            return repr(operand.value)
        name = operand.name
        cached = self.local_map.get(name)
        if cached is not None:
            return cached
        if name in self.pending:
            var = self.fresh()
            self.emit(f"{var} = regs[{name!r}]")
            self.emit(f"if {var}.__class__ is _Pending:")
            self.emit(
                f'    raise RuntimeFault(f"P{{proc.pid}}: read of '
                f"%{name} before its get completed (missing sync_ctr "
                '— compiler bug)")'
            )
            self.local_map[name] = var
            return var
        return f"regs[{name!r}]"

    def write(self, dest, expr: str) -> None:
        var = self.fresh()
        self.emit(f"{var} = {expr}")
        self.emit(f"regs[{dest.name!r}] = {var}")
        self.local_map[dest.name] = var

    def array(self, var: str) -> str:
        cached = self.array_map.get(var)
        if cached is None:
            cached = self.fresh()
            self.emit(f"{cached} = frame.arrays[{var!r}]")
            self.array_map[var] = cached
        return cached

    def flat_expr(self, ins: Instr) -> str:
        """Bounds-checked flat offset, replicating ``_local_flat``."""
        dims = self.function.local_arrays[ins.var].dims
        flat = None
        for operand, extent in zip(ins.indices, dims):
            if isinstance(operand, Const):
                index = int(operand.value)
                if 0 <= index < extent:
                    term = str(index)
                else:
                    # Out of range statically: fault when executed,
                    # with the seed's exact message.
                    self.emit(
                        f'raise RuntimeFault(f"P{{proc.pid}}: local '
                        f"array {ins.var} index {index} out of range "
                        f'[0, {extent})")'
                    )
                    term = "0"  # unreachable
            else:
                iv = self.fresh()
                self.emit(f"{iv} = int({self.read(operand)})")
                self.emit(f"if not 0 <= {iv} < {extent}:")
                self.emit(
                    f'    raise RuntimeFault(f"P{{proc.pid}}: local '
                    f"array {ins.var} index {{{iv}}} out of range "
                    f'[0, {extent})")'
                )
                term = iv
            flat = term if flat is None else f"({flat} * {extent} + {term})"
        return flat if flat is not None else "0"

    # -- per-opcode translation -------------------------------------------

    def add(self, ins: Instr) -> None:
        machine = self.machine
        op = ins.op
        self.count += 1
        if op is Opcode.CONST:
            self.write(ins.dest, repr(ins.value))
            self.cost += machine.cpu_op
        elif op is Opcode.MOVE:
            self.write(ins.dest, self.read(ins.src))
            self.cost += machine.cpu_op
        elif op is Opcode.BINOP:
            template = _INLINE_BINOPS.get(ins.binop)
            left, right = self.read(ins.lhs), self.read(ins.rhs)
            if template is not None:
                expr = template.format(l=left, r=right)
            else:  # DIV/MOD: runtime-typed, share the seed helper
                kind = self.const(ins.binop)
                expr = f"_binop({kind}, {left}, {right})"
            self.write(ins.dest, expr)
            self.cost += machine.cpu_op
        elif op is Opcode.UNOP:
            value = self.read(ins.src)
            if ins.unop is UnOpKind.NEG:
                expr = f"(-{value})"
            else:
                expr = f"(0 if {value} else 1)"
            self.write(ins.dest, expr)
            self.cost += machine.cpu_op
        elif op is Opcode.INTRINSIC:
            args = ", ".join(self.read(a) for a in ins.args)
            self.write(ins.dest, f"_intrinsic({ins.intrinsic!r}, [{args}])")
            self.cost += machine.cpu_op * 4
        elif op is Opcode.LOAD_LOCAL:
            array = self.array(ins.var)
            self.write(ins.dest, f"{array}[{self.flat_expr(ins)}]")
            self.cost += machine.local_mem
        elif op is Opcode.STORE_LOCAL:
            array = self.array(ins.var)
            flat = self.flat_expr(ins)
            self.emit(f"{array}[{flat}] = {self.read(ins.src)}")
            self.cost += machine.local_mem
        elif op is Opcode.JUMP:
            self.emit(f"frame.block = {ins.target!r}")
            self.cost += machine.cpu_op
            self.tail = ["    frame.index = 0"]
            self.result = "-1"
        elif op is Opcode.BRANCH:
            cond = self.read(ins.cond)
            self.emit(f"if {cond} != 0:")
            self.emit(f"    frame.block = {ins.true_target!r}")
            self.emit("else:")
            self.emit(f"    frame.block = {ins.false_target!r}")
            self.cost += machine.cpu_op
            self.tail = ["    frame.index = 0"]
            self.result = "-1"
        else:  # pragma: no cover - the fuser only feeds FAST_OPS
            raise RuntimeFault(f"cannot fuse {ins}")

    def add_shared(self, ins: Instr, index: int) -> None:
        """Inlines a blocking shared access (read_shared/write_shared).

        Replicates ``_blocking_read``/``_blocking_write`` for the
        local-home case — same fault messages, same evaluation order
        (all indices, then the written value, then the leading-bounds
        /owner check, then trailing bounds) and the same
        ``local_access`` charge.  A remote owner bails to the seed
        ``_execute`` path after settling the run's partial cost, and
        the blocking protocol takes over unchanged.
        """
        sim = self.sim
        machine = self.machine
        var = sim.memory.var(ins.var)
        num_procs = sim.num_procs
        name = ins.var
        # 1. Evaluate every index left to right (undefined/pending
        #    faults fire here, before any bounds check — indices_of).
        idx_terms: List[str] = []
        for operand in ins.indices:
            if isinstance(operand, Const):
                idx_terms.append(str(int(operand.value)))
            else:
                iv = self.fresh()
                self.emit(f"{iv} = int({self.read(operand)})")
                idx_terms.append(iv)
        # 2. For writes, materialize the value next (``_blocking_write``
        #    evaluates it before the owner lookup can fault).
        val = None
        if ins.op is Opcode.WRITE_SHARED:
            val = self.fresh()
            self.emit(f"{val} = {self.read(ins.src)}")
        # 3. Leading bounds + owner (messages from ``GlobalMemory``).
        if var.dims:
            lead = idx_terms[0]
            extent = var.dims[0]
            self.emit(f"if not 0 <= {lead} < {extent}:")
            self.emit(
                f'    raise RuntimeFault(f"{name}: leading index '
                f'{{{lead}}} out of range [0, {extent})")'
            )
            if var.distribution is Distribution.CYCLIC:
                owner = f"({lead} % {num_procs})"
            else:
                block = -(-extent // num_procs)
                if block * num_procs == extent:
                    # Even division: the min() clamp can never fire
                    # (lead < extent implies lead // block < procs).
                    owner = f"({lead} // {block})"
                else:
                    owner = f"min({lead} // {block}, {num_procs - 1})"
        else:
            owner = "0"
        # 4. Remote home: settle the run's partial cost and funnel this
        #    instruction through the seed blocking path (it re-checks
        #    everything; the processor parks until the reply).
        ins_ref = self.const(ins)
        self.emit(f"if {owner} != proc.pid:")
        if self.cost:
            self.emit(f"    proc.clock += {self.cost}")
        self.emit(f"    proc.instructions += {self.count + 1}")
        self.emit(f"    frame.index = {index}")
        self.emit(f"    if proc._execute({ins_ref}, frame):")
        self.emit(f"        return {index + 1}")
        self.emit("    return -2")
        # 5. Local home: trailing bounds checks, then direct storage
        #    access (the leading dimension was checked above).
        flat = idx_terms[0] if var.dims else "0"
        for term, extent in zip(idx_terms[1:], var.dims[1:]):
            self.emit(f"if not 0 <= {term} < {extent}:")
            self.emit(
                f'    raise RuntimeFault(f"{name}: index {{{term}}} '
                f'out of range [0, {extent})")'
            )
            flat = f"({flat} * {extent} + {term})"
        storage = self.array_map.get("\0" + name)
        if storage is None:
            storage = self.const(sim.memory._storage[name])
            self.array_map["\0" + name] = storage
        if ins.op is Opcode.READ_SHARED:
            self.write(ins.dest, f"{storage}[{flat}]")
        elif var.kind is ScalarKind.INT:
            self.emit(f"{storage}[{flat}] = int({val})")
        else:
            self.emit(f"{storage}[{flat}] = {val}")
        self.cost += machine.local_access
        self.count += 1

    def compile(self, next_index: int) -> Step:
        if not self.tail:
            self.result = str(next_index)
        body = self.lines or ["        pass"]
        source = "\n".join(
            [
                "def _step(proc, frame, regs):",
                "    try:",
                *body,
                "    except KeyError as exc:",
                '        raise RuntimeFault(f"P{proc.pid}: use of '
                'undefined temp %{exc.args[0]}") from None',
                f"    proc.clock += {self.cost}",
                f"    proc.instructions += {self.count}",
                *self.tail,
                f"    return {self.result}",
            ]
        )
        exec(source, self.env)  # noqa: S102 - deterministic codegen
        return self.env["_step"]


def _make_slow(ins: Instr, index: int) -> Step:
    """A step that funnels through the seed ``_execute`` path."""
    if ins.op in (Opcode.JUMP, Opcode.BRANCH, Opcode.CALL, Opcode.RET):
        # Control may change the frame or block: refetch on success.
        def step(proc, frame, regs, _ins=ins, _idx=index) -> int:
            frame.index = _idx
            proc.instructions += 1
            if proc._execute(_ins, frame):
                return -1
            return -2
    else:
        def step(
            proc, frame, regs, _ins=ins, _idx=index, _nxt=index + 1
        ) -> int:
            frame.index = _idx
            proc.instructions += 1
            if proc._execute(_ins, frame):
                # Non-control success always lands on index + 1
                # (blocking paths return False instead).
                return _nxt
            return -2
    return step


def decode_function(
    function: Function,
    machine,
    delay_fences: Optional[frozenset] = None,
    sim=None,
) -> Dict[str, List[Step]]:
    """Decodes every block of ``function`` into step lists.

    Entry points into a step list are index 0 and each slow step's
    successor (where blocked processors resume); interior indices of a
    fused run are filled with a loud guard.

    When ``sim`` is given and the run is untraced and sequentially
    consistent, blocking shared accesses fuse too (the dominant cost
    of stencil kernels is local-home reads/writes — see
    :meth:`_RunCompiler.add_shared`).  A remote access blocks with the
    frame advanced past it, so each position after a fused shared op
    gets its own suffix-run entry for the resume.
    """
    fences = delay_fences or frozenset()
    pending = _pending_temps(function)
    shared_ok = sim is not None and sim.trace is None and sim.weak is None

    def fusable(ins: Instr) -> bool:
        if ins.uid in fences:
            return False
        if ins.op in FAST_OPS:
            return True
        if shared_ok and ins.op in SHARED_OPS:
            # Arity mismatches fault through the seed path instead.
            return len(ins.indices) == len(sim.memory.var(ins.var).dims)
        return False

    decoded: Dict[str, List[Step]] = {}
    for block in function.blocks:
        instrs = block.instrs
        steps: List[Step] = [_unreachable] * len(instrs)
        i = 0
        while i < len(instrs):
            if fusable(instrs[i]):
                j = i
                while j < len(instrs) and fusable(instrs[j]):
                    j += 1
                # One entry at the head of the run, plus one after each
                # fused shared access (remote blocking resumes there).
                entries = [i] + [
                    k + 1
                    for k in range(i, j - 1)
                    if instrs[k].op in SHARED_OPS
                ]
                for start in entries:
                    run = _RunCompiler(function, machine, pending, sim)
                    for k in range(start, j):
                        if instrs[k].op in SHARED_OPS:
                            run.add_shared(instrs[k], k)
                        else:
                            run.add(instrs[k])
                    steps[start] = run.compile(j)
                i = j
            else:
                steps[i] = _make_slow(instrs[i], i)
                i += 1
        decoded[block.label] = steps
    return decoded
