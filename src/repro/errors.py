"""Common exception types used throughout the repro package.

Every user-facing failure — a lexical error in a MiniSplit source file, a
type error, an unsupported construct in the analyzer, a deadlock detected
by the machine simulator — derives from :class:`ReproError` so callers can
catch one base class at the API boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SourceLocation:
    """A position in a MiniSplit source file (1-based line and column)."""

    line: int
    column: int
    filename: str = "<input>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class SourceError(ReproError):
    """An error attributable to a location in a MiniSplit source file."""

    def __init__(self, message: str, location: Optional[SourceLocation] = None):
        self.location = location
        self.message = message
        prefix = f"{location}: " if location is not None else ""
        super().__init__(f"{prefix}{message}")


class LexError(SourceError):
    """A lexical error (bad character, unterminated literal, ...)."""


class ParseError(SourceError):
    """A syntax error."""


class TypeError_(SourceError):
    """A semantic/type error.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class AnalysisError(ReproError):
    """The analyzer was given a program it cannot handle (e.g. recursion)."""


class CodegenError(ReproError):
    """Code generation failed an internal invariant."""


class RuntimeFault(ReproError):
    """A fault raised by the machine simulator while executing a program."""


class NetworkFault(RuntimeFault):
    """A message exhausted its retransmission budget and is undeliverable.

    Raised by the simulator's reliability protocol when the retry cap is
    reached — a permanently partitioned link, or a fault plan so lossy
    the exponential backoff budget runs out.  Carries the undeliverable
    message and the sending link's fault statistics so callers (and the
    CLI) can render a precise diagnostic instead of hanging.
    """

    def __init__(
        self,
        message: str,
        undeliverable=None,
        link=None,
        attempts: Optional[int] = None,
        link_stats=None,
    ):
        self.undeliverable = undeliverable
        self.link = link
        self.attempts = attempts
        self.link_stats = link_stats
        super().__init__(message)


class DeadlockError(RuntimeFault):
    """All simulated processors are blocked and no message is in flight.

    ``report`` holds the multi-line forensics dump (per-processor
    blocked reason and program counter, pending sync-object state,
    in-flight message counts); the exception string leads with a
    one-line summary so log greps stay readable.
    """

    def __init__(self, message: str, report: Optional[str] = None):
        self.report = report
        super().__init__(message if report is None
                         else f"{message}\n{report}")


class ConsistencyViolation(ReproError):
    """A trace was determined not to be sequentially consistent."""
