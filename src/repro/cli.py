"""Command-line interface.

::

    repro analyze program.ms [--level sas|sync]
    repro compile program.ms [--opt O0..O4] [--emit]
              [--verify-each-pass] [--print-after-pass PASS]
    repro run program.ms [--opt O3] [--procs 8] [--machine cm5] [--seed 0]
              [--barrier-topology central|sense|tree] [--tree-fanin K]
              [--engine batched|reference]
              [--memory-model sc|tso|pso] [--drain-seed 0] [--strip-delays]
              [--faults drop=0.1,dup=0.05] [--fault-seed 0] [--verbose]
    repro passes
    repro bench-app ocean [--procs 8] [--machine cm5]
    repro fuzz [--iterations N | --budget-seconds S] [--seed 0]
               [--profile mixed|sync_heavy|lock_heavy|...|all]
               [--verify-passes]
    repro serve --socket /tmp/repro.sock [--cache-dir DIR] [--jobs N]
    repro client ping|stats|shutdown --socket /tmp/repro.sock
    repro client compile|analyze|simulate prog.ms --socket ...

``repro`` is also usable as ``python -m repro``.  The full
subcommand/flag reference lives in docs/CLI.md (enforced against this
module by ``tests/serve/test_docs_sync.py``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, List, Optional

from repro import OptLevel, analyze_source, compile_source
from repro.analysis.delays import AnalysisLevel
from repro.runtime.machine import (
    BARRIER_TOPOLOGIES,
    MACHINES,
    MEMORY_MODELS,
    get_machine,
    validate_barrier_topology,
    validate_memory_model,
    validate_tree_fanin,
)
from repro.runtime.simulator import ENGINES


def _read_source(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("source", help="MiniSplit source file")


def _add_profile(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", action="store_true",
        help="emit per-pass wall-time and counter JSON after the command",
    )


def _add_pipeline_debug(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--verify-each-pass", action="store_true",
        help="re-verify the IR after every mutating codegen pass, "
             "pinning a verifier failure to the pass that caused it",
    )
    parser.add_argument(
        "--print-after-pass", action="append", default=None,
        metavar="PASS",
        help="dump the working IR after the named pass "
             "('all' = after every mutating pass); repeatable — "
             "see 'repro passes' for the pass names",
    )


def _pipeline_options(args: argparse.Namespace):
    """PipelineOptions from the debug flags (None = environment only)."""
    verify = getattr(args, "verify_each_pass", False)
    prints = tuple(getattr(args, "print_after_pass", None) or ())
    if not verify and not prints:
        return None
    from repro.pipeline import PipelineOptions

    options = PipelineOptions.from_env()
    options.verify_each_pass = options.verify_each_pass or verify
    options.print_after = prints
    return options


def _cmd_analyze(args: argparse.Namespace) -> int:
    level = (
        AnalysisLevel.SAS if args.level == "sas" else AnalysisLevel.SYNC
    )
    result = analyze_source(_read_source(args.source), level,
                            filename=args.source)
    stats = result.stats
    print(f"analysis level:      {result.level.value}")
    print(f"shared accesses:     {stats.num_accesses} "
          f"({stats.num_sync_accesses} synchronization)")
    print(f"conflict pairs:      {stats.conflict_pairs}")
    print(f"precedence edges:    {stats.precedence_size}")
    print(f"initial delays (D1): {stats.d1_size}")
    print(f"delay set size:      {stats.delay_size}")
    if args.report:
        from repro.analysis.report import render_report

        print()
        print(render_report(result, witnesses=args.witnesses))
    elif args.edges:
        print("delay edges:")
        for a, b in result.delay_edges():
            print(f"  {a}  ->  {b}")
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    program = compile_source(
        _read_source(args.source), OptLevel(args.opt),
        filename=args.source, options=_pipeline_options(args),
    )
    report = program.report
    print(f"opt level:          {program.opt_level.value}")
    print(f"reads split-phased: {report.converted_reads}")
    print(f"writes split-phased:{report.converted_writes}")
    print(f"gets fused:         {report.gets_fused}")
    print(f"gets hoisted:       {report.gets_hoisted}")
    print(f"sync placements:    {report.sync_moves}")
    print(f"puts -> stores:     {report.one_way_conversions}")
    print(f"gets eliminated:    {report.gets_eliminated}")
    print(f"puts eliminated:    {report.puts_eliminated}")
    print(f"sync counters:      {report.counters_after} "
          f"(from {report.counters_before})")
    if args.emit:
        print()
        print(program.splitc() if args.splitc else program.pretty())
    return 0


def _runtime_error_exit(exc: BaseException, verbose: bool) -> int:
    """One-line diagnostic (or full traceback with --verbose), exit 2."""
    if verbose:
        import traceback

        traceback.print_exc(file=sys.stderr)
    else:
        from repro.errors import DeadlockError

        first = str(exc).splitlines()[0]
        print(f"repro: error: {first}", file=sys.stderr)
        if isinstance(exc, DeadlockError) and exc.report:
            print(
                "repro: re-run with --verbose for the full deadlock "
                "report", file=sys.stderr,
            )
    return 2


def _parse_faults(args: argparse.Namespace):
    """The FaultPlan from --faults/--fault-seed, or None."""
    if not getattr(args, "faults", None):
        return None
    from repro.runtime.network import FaultPlan

    return FaultPlan.parse(args.faults, seed=args.fault_seed)


def _print_fault_summary(result) -> None:
    summary = result.fault_summary()
    print(f"drops:       {summary['drops']} "
          f"(partition: {summary['partition_drops']})")
    print(f"retransmits: {summary['retransmits']}")
    print(f"duplicates:  {summary['duplicates_injected']} injected, "
          f"{summary['duplicates_suppressed']} suppressed")
    histogram = summary["retry_histogram"]
    if histogram:
        shown = ", ".join(
            f"{attempts}x:{count}"
            for attempts, count in sorted(
                histogram.items(), key=lambda item: int(item[0])
            )
        )
        print(f"retries:     {shown}")


def _cmd_run(args: argparse.Namespace) -> int:
    # Validate every schedule knob before compiling anything: a typo'd
    # machine, memory model, barrier topology, tree fan-in or
    # processor count (with or without --faults) gets the one-line
    # exit-2 diagnostic, never a traceback.
    try:
        plan = _parse_faults(args)
        machine = get_machine(args.machine)
        model = validate_memory_model(args.memory_model)
        topology = validate_barrier_topology(args.barrier_topology)
        fanin = args.tree_fanin
        if topology == "tree":
            fanin = validate_tree_fanin(
                machine.tree_fanin if fanin is None else fanin
            )
        if args.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {args.engine!r} "
                f"(known: {', '.join(ENGINES)})"
            )
        if args.procs > machine.max_procs:
            raise ValueError(
                f"{args.procs} processors exceeds the {machine.name} "
                f"model's limit of {machine.max_procs}"
            )
    except (ValueError, KeyError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"repro: error: {message}", file=sys.stderr)
        return 2
    if model != "sc":
        machine = machine.with_memory_model(model, args.drain_seed)
    if topology != machine.barrier_topology or fanin is not None:
        machine = machine.with_barrier_topology(topology, fanin)
    program = compile_source(
        _read_source(args.source), OptLevel(args.opt),
        filename=args.source, options=_pipeline_options(args),
    )
    if args.strip_delays:
        program = program.without_delay_fences()
    from repro.errors import DeadlockError, RuntimeFault

    run_kwargs = {}
    if plan is not None:
        run_kwargs["fault_plan"] = plan
    try:
        result = program.run(
            args.procs, machine, seed=args.seed, engine=args.engine,
            **run_kwargs
        )
    except (DeadlockError, RuntimeFault) as exc:
        return _runtime_error_exit(exc, args.verbose)
    print(f"machine:     {machine.name} ({args.procs} processors)")
    print(f"cycles:      {result.cycles}")
    print(f"instructions:{result.instructions}")
    print(f"messages:    {result.total_messages}")
    if result.weak_stats is not None:
        stats = result.weak_stats
        fences = len(program.delay_fences)
        print(f"memory model:{' ' + model} "
              f"(drain seed {args.drain_seed}, {fences} delay fence(s)"
              f"{', delays stripped' if args.strip_delays else ''})")
        print(f"  buffered:  {stats['buffered_writes']} write(s), "
              f"max depth {stats['max_depth']}")
        print(f"  forwarded: {stats['forwards']} read(s)")
        print(f"  drained:   {stats['drained']} background, "
              f"{stats['fence_drained']} at {stats['fences']} fence(s)")
    if plan is not None:
        print(f"fault plan:  {plan.describe()}")
        _print_fault_summary(result)
    if args.dump:
        for name, values in sorted(result.snapshot().items()):
            shown = ", ".join(f"{v:g}" for v in values[: args.dump])
            suffix = ", ..." if len(values) > args.dump else ""
            print(f"  {name} = [{shown}{suffix}]")
    return 0


def _cmd_bench_app(args: argparse.Namespace) -> int:
    from repro.apps import get_app
    from repro.perf.parallel import compile_levels

    app = get_app(args.app)
    machine = get_machine(args.machine)
    source = app.source(args.procs)
    print(f"{app.name}: {app.description}")
    levels = (OptLevel.O1, OptLevel.O2, OptLevel.O3)
    programs = compile_levels(
        source, levels,
        processes=args.jobs,
        use_cache=False if args.no_cache else None,
    )
    from repro.errors import DeadlockError, RuntimeFault

    for level, program in zip(levels, programs):
        try:
            result = program.run(args.procs, machine, seed=args.seed)
        except (DeadlockError, RuntimeFault) as exc:
            return _runtime_error_exit(exc, args.verbose)
        print(
            f"  {level.value}: {result.cycles} cycles, "
            f"{result.total_messages} messages"
        )
    return 0


def _cmd_passes(args: argparse.Namespace) -> int:
    from repro.pipeline import describe_pipelines

    print(describe_pipelines())
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    from repro.fuzz import PROFILES, FuzzConfig, run_campaign

    def log(message: str) -> None:
        if not args.quiet:
            print(message, file=sys.stderr)

    try:
        topology = validate_barrier_topology(args.barrier_topology)
    except KeyError as exc:
        print(f"repro: error: {exc.args[0]}", file=sys.stderr)
        return 2

    profiles = (
        sorted(PROFILES) if args.profile == "all" else [args.profile]
    )
    budget = args.budget_seconds
    iterations = args.iterations
    if budget is not None:
        budget = budget / len(profiles)
    elif iterations is not None:
        iterations = max(1, iterations // len(profiles))

    per_profile = {}
    totals = {
        "programs": 0, "schedules_run": 0, "runs": 0,
        "fault_runs": 0, "retransmits": 0, "weak_runs": 0,
        "sc_checks": 0, "sc_skips": 0, "sc_violations": 0,
        "failures": 0,
    }
    bundles = []
    for index, profile in enumerate(profiles):
        log(f"== profile {profile} ({index + 1}/{len(profiles)})")
        config = FuzzConfig(
            seed=args.seed,
            profile=profile,
            iterations=iterations,
            budget_seconds=budget,
            schedules_per_program=args.schedules,
            barrier_topology=topology,
            levels=tuple(args.levels.split(",")),
            sc_step_limit=args.step_limit,
            failures_dir=args.failures_dir,
            max_failures=args.max_failures,
            minimize=not args.no_minimize,
            jobs=args.jobs,
            use_cache=False if args.no_cache else None,
            verify_each_pass=args.verify_passes,
        )
        stats = run_campaign(config, log=log).as_dict()
        per_profile[profile] = stats
        for key in totals:
            if key == "failures":
                totals[key] += len(stats["failures"])
            else:
                totals[key] += stats[key]
        bundles.extend(stats["bundles"])

    payload = {
        "schema": 1,
        "seed": args.seed,
        "profiles": per_profile,
        "totals": totals,
        "bundles": bundles,
    }
    rendered = json.dumps(payload, indent=2, sort_keys=True)
    print(rendered)
    if args.stats_out:
        with open(args.stats_out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    if totals["failures"]:
        log(
            f"{totals['failures']} failure(s); bundles under "
            f"{args.failures_dir}/"
        )
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.daemon import ServeConfig, serve

    if args.cache_dir:
        # Pool workers resolve the store from the environment; keep
        # them pointed at the same root the daemon serves from.
        os.environ["REPRO_CACHE_DIR"] = args.cache_dir
    chaos = None
    if args.chaos:
        from repro.serve.chaos import ServeFaultPlan

        try:
            chaos = ServeFaultPlan.parse(
                args.chaos, seed=args.chaos_seed
            )
        except ValueError as exc:
            return _runtime_error_exit(exc, args.verbose)
    config = ServeConfig(
        socket_path=args.socket,
        cache_dir=args.cache_dir,
        max_entries=args.max_entries,
        max_bytes=args.max_bytes,
        batch_window=args.batch_window,
        jobs=args.jobs,
        drain_timeout=args.drain_timeout,
        max_pending=args.max_pending,
        watchdog_timeout=args.watchdog_timeout,
        chaos=chaos,
    )
    try:
        asyncio.run(serve(config))
    except OSError as exc:
        return _runtime_error_exit(exc, args.verbose)
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    import json

    from repro.serve.client import (
        RetryPolicy,
        ServeClient,
        ServeError,
    )

    needs_source = args.op in ("compile", "analyze", "simulate")
    if needs_source and not args.source:
        print(
            f"repro: error: client {args.op} requires a source file",
            file=sys.stderr,
        )
        return 2
    try:
        with ServeClient(
            args.socket,
            timeout=args.timeout,
            connect_timeout=args.connect_timeout,
            deadline_ms=args.deadline_ms,
            retry=RetryPolicy(max_attempts=max(1, args.retries)),
        ) as client:
            if args.op == "compile":
                result = client.compile(
                    _read_source(args.source), opt=args.opt
                )
            elif args.op == "analyze":
                result = client.analyze(
                    _read_source(args.source), level=args.level
                )
            elif args.op == "simulate":
                result = client.simulate(
                    _read_source(args.source),
                    opt=args.opt,
                    procs=args.procs,
                    machine=args.machine,
                    seed=args.seed,
                    memory_model=args.memory_model,
                    drain_seed=args.drain_seed,
                )
            else:
                result = client.request(args.op)
    except ServeError as exc:
        print(
            f"repro: error: [{exc.code}] {exc.message}",
            file=sys.stderr,
        )
        hint = _client_retry_hint(exc, args)
        if hint:
            print(f"repro: hint: {hint}", file=sys.stderr)
        return 2
    if args.artifact_out and "artifact" in result:
        import base64

        with open(args.artifact_out, "wb") as handle:
            handle.write(base64.b64decode(result["artifact"]))
    if "artifact" in result:
        # The pickled blob is for --artifact-out, not terminals.
        result = dict(result)
        result["artifact"] = (
            f"<{result.pop('artifact_bytes')} bytes; "
            "use --artifact-out to save>"
        )
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def _client_retry_hint(exc: Any, args: argparse.Namespace) -> str:
    """One actionable line for retryable ``repro client`` failures."""
    wait = (
        f"{exc.retry_after_ms}ms"
        if getattr(exc, "retry_after_ms", None) is not None
        else "a moment"
    )
    if exc.code == "shutting_down":
        return (
            f"the daemon is draining; retry in {wait} "
            "or start a fresh daemon"
        )
    if exc.code == "overloaded":
        return (
            f"the daemon shed this request (pending queue full); "
            f"retry in {wait} or raise serve --max-pending"
        )
    if exc.code == "circuit_open":
        return (
            "repeated transport failures tripped the circuit "
            "breaker; check the daemon and retry"
        )
    if exc.code == "transport":
        return (
            f"no answer after {max(1, args.retries)} attempt(s); "
            f"is a daemon listening on {args.socket!r}?"
        )
    return ""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Optimizing Parallel Programs with Explicit "
            "Synchronization' (PLDI 1995)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser(
        "analyze", help="run delay-set analysis and print statistics"
    )
    _add_common(analyze)
    analyze.add_argument("--level", choices=["sas", "sync"], default="sync")
    analyze.add_argument(
        "--edges", action="store_true", help="list every delay edge"
    )
    analyze.add_argument(
        "--report", action="store_true",
        help="print the full grouped analysis report",
    )
    analyze.add_argument(
        "--witnesses", action="store_true",
        help="with --report: show the violation cycle each delay "
             "prevents",
    )
    _add_profile(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    compile_cmd = subparsers.add_parser(
        "compile", help="compile and report the optimizations applied"
    )
    _add_common(compile_cmd)
    compile_cmd.add_argument(
        "--opt", choices=[lvl.value for lvl in OptLevel], default="O3"
    )
    compile_cmd.add_argument(
        "--emit", action="store_true", help="print the optimized IR"
    )
    compile_cmd.add_argument(
        "--splitc", action="store_true",
        help="with --emit: print Split-C-style surface syntax instead",
    )
    _add_profile(compile_cmd)
    _add_pipeline_debug(compile_cmd)
    compile_cmd.set_defaults(func=_cmd_compile)

    run = subparsers.add_parser(
        "run", help="compile and simulate on a machine model"
    )
    _add_common(run)
    run.add_argument(
        "--opt", choices=[lvl.value for lvl in OptLevel], default="O3"
    )
    run.add_argument("--procs", type=int, default=8)
    # Not argparse ``choices``: unknown names go through the same
    # one-line exit-2 diagnostic as bad --faults specs, even combined.
    run.add_argument(
        "--machine", default="cm5", metavar="NAME",
        help=f"machine model ({', '.join(sorted(MACHINES))})",
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--barrier-topology", default="central", metavar="TOPO",
        help="barrier synchronization topology "
             f"({', '.join(BARRIER_TOPOLOGIES)}; default central, "
             "the seed-identical rendezvous)",
    )
    run.add_argument(
        "--tree-fanin", type=int, default=None, metavar="K",
        help="combining-tree fan-in for --barrier-topology tree "
             "(power of two >= 2; default the machine model's, 4)",
    )
    run.add_argument(
        "--engine", default="batched", metavar="NAME",
        help=f"event engine ({', '.join(ENGINES)}; default batched — "
             "reference is the seed heapq loop, cycle-identical)",
    )
    run.add_argument(
        "--memory-model", default="sc", metavar="MODEL",
        help="memory model the simulated hardware executes "
             f"({', '.join(MEMORY_MODELS)}; default sc)",
    )
    run.add_argument(
        "--drain-seed", type=int, default=0,
        help="seed for the store-buffer drain schedule (weak models)",
    )
    run.add_argument(
        "--strip-delays", action="store_true",
        help="drop the compiler's delay fences before running — the "
             "weak-memory debug twin that may exhibit non-SC outcomes",
    )
    run.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject network faults, e.g. "
             "'drop=0.1,dup=0.05,partition=0-1@5000+20000' "
             "(see repro.runtime.network for the full grammar)",
    )
    run.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the fault-decision RNG (deterministic replay)",
    )
    run.add_argument(
        "--verbose", action="store_true",
        help="print full tracebacks and deadlock reports on failure",
    )
    run.add_argument(
        "--dump", type=int, default=0, metavar="N",
        help="print the first N elements of each shared variable",
    )
    _add_profile(run)
    _add_pipeline_debug(run)
    run.set_defaults(func=_cmd_run)

    passes = subparsers.add_parser(
        "passes",
        help="list the registered passes, artifacts, and O0-O4 "
             "pipelines",
    )
    passes.set_defaults(func=_cmd_passes)

    bench = subparsers.add_parser(
        "bench-app", help="run one application kernel at several levels"
    )
    bench.add_argument("app")
    bench.add_argument("--procs", type=int, default=8)
    bench.add_argument(
        "--machine", choices=sorted(MACHINES), default="cm5"
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="compile the optimization levels across N processes "
             "(0/1 = in-process)",
    )
    bench.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk compile cache for this run",
    )
    bench.add_argument(
        "--verbose", action="store_true",
        help="print full tracebacks and deadlock reports on failure",
    )
    _add_profile(bench)
    bench.set_defaults(func=_cmd_bench_app)

    from repro.fuzz.progen import PROFILES as _FUZZ_PROFILES

    fuzz = subparsers.add_parser(
        "fuzz",
        help="run a differential fuzzing campaign (exit 1 on failures)",
    )
    fuzz.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="stop after N generated programs (per profile)",
    )
    fuzz.add_argument(
        "--budget-seconds", type=float, default=None, metavar="S",
        help="stop after S seconds of wall clock (split across "
             "profiles with --profile all)",
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument(
        "--profile",
        choices=sorted(_FUZZ_PROFILES) + ["all"],
        default="mixed",
    )
    fuzz.add_argument(
        "--schedules", type=int, default=3, metavar="N",
        help="adversarial schedules per program",
    )
    fuzz.add_argument(
        "--barrier-topology", default="central", metavar="TOPO",
        help="barrier topology every schedule runs "
             f"({', '.join(BARRIER_TOPOLOGIES)}; default central)",
    )
    fuzz.add_argument(
        "--levels", default="O0,O1,O3", metavar="L1,L2,...",
        help="optimization levels to cross-check "
             "(default the NAIVE/SHASHA_SNIR/SYNC trio)",
    )
    fuzz.add_argument(
        "--step-limit", type=int, default=20_000,
        help="SC-checker step budget; larger traces are skipped "
             "and counted",
    )
    fuzz.add_argument("--failures-dir", default="fuzz-failures")
    fuzz.add_argument(
        "--max-failures", type=int, default=5,
        help="stop a profile's campaign after this many failures",
    )
    fuzz.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="compile pool width (0/1 = in-process)",
    )
    fuzz.add_argument("--no-cache", action="store_true",
                      help="bypass the on-disk compile cache")
    fuzz.add_argument("--no-minimize", action="store_true",
                      help="skip delta-debugging failing programs")
    fuzz.add_argument(
        "--verify-passes", action="store_true",
        help="verify the IR after every mutating codegen pass of every "
             "compile (compiles in-process, bypassing pool and cache)",
    )
    fuzz.add_argument(
        "--stats-out", default=None, metavar="PATH",
        help="also write the campaign-stats JSON to PATH",
    )
    fuzz.add_argument("--quiet", action="store_true",
                      help="suppress progress lines on stderr")
    fuzz.set_defaults(func=_cmd_fuzz)

    serve = subparsers.add_parser(
        "serve",
        help="run the compile-as-a-service daemon on a unix socket",
    )
    serve.add_argument(
        "--socket", required=True, metavar="PATH",
        help="unix socket path to listen on",
    )
    serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact-store root (default $REPRO_CACHE_DIR or "
             "~/.cache/repro-compile)",
    )
    serve.add_argument(
        "--max-entries", type=int, default=None, metavar="N",
        help="LRU budget: evict down to N store entries after a put",
    )
    serve.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="LRU budget: evict down to N total store bytes after a put",
    )
    serve.add_argument(
        "--batch-window", type=float, default=0.002, metavar="S",
        help="seconds to coalesce cache misses into one pool batch "
             "(0 disables batching; default 0.002)",
    )
    serve.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="compile-pool width for a batch (0/1 = in-process; "
             "default auto)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="S",
        help="seconds to wait for in-flight requests on shutdown",
    )
    serve.add_argument(
        "--max-pending", type=int, default=256, metavar="N",
        help="admission control: refuse (overloaded) once N artifact "
             "requests are queued for the compile path (default 256)",
    )
    serve.add_argument(
        "--watchdog-timeout", type=float, default=30.0, metavar="S",
        help="seconds a compile-pool batch may take before the pool "
             "is declared wedged and compiles go serial (default 30)",
    )
    serve.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="inject seeded faults for resilience drills, e.g. "
             "'refuse=0.05,garble=0.1,crash.mid_batch=0.01' "
             "(grammar: repro.serve.chaos)",
    )
    serve.add_argument(
        "--chaos-seed", type=int, default=0, metavar="N",
        help="RNG seed for the --chaos fault plan (default 0)",
    )
    serve.add_argument(
        "--verbose", action="store_true",
        help="print full tracebacks on startup failure",
    )
    serve.set_defaults(func=_cmd_serve)

    client = subparsers.add_parser(
        "client",
        help="send one request to a running repro serve daemon",
    )
    client.add_argument(
        "op",
        choices=["ping", "stats", "shutdown", "compile", "analyze",
                 "simulate"],
        help="the protocol operation to perform",
    )
    client.add_argument(
        "source", nargs="?", default=None,
        help="MiniSplit source file (compile/analyze/simulate)",
    )
    client.add_argument(
        "--socket", required=True, metavar="PATH",
        help="unix socket the daemon listens on",
    )
    client.add_argument(
        "--opt", choices=[lvl.value for lvl in OptLevel], default="O3"
    )
    client.add_argument(
        "--level", choices=["sas", "sync"], default="sync",
        help="analysis level (analyze op)",
    )
    client.add_argument("--procs", type=int, default=8)
    client.add_argument(
        "--machine", default="cm5", metavar="NAME",
        help=f"machine model ({', '.join(sorted(MACHINES))})",
    )
    client.add_argument("--seed", type=int, default=0)
    client.add_argument(
        "--memory-model", default="sc", metavar="MODEL",
        help="memory model for the simulate op "
             f"({', '.join(MEMORY_MODELS)}; default sc)",
    )
    client.add_argument(
        "--drain-seed", type=int, default=0,
        help="store-buffer drain-schedule seed (weak models)",
    )
    client.add_argument(
        "--timeout", type=float, default=120.0, metavar="S",
        help="seconds to wait for the daemon's response",
    )
    client.add_argument(
        "--connect-timeout", type=float, default=5.0, metavar="S",
        help="seconds to wait for the unix-socket dial (default 5)",
    )
    client.add_argument(
        "--retries", type=int, default=4, metavar="N",
        help="attempts for retryable failures (transport/overloaded/"
             "shutting_down) with jittered backoff (default 4)",
    )
    client.add_argument(
        "--deadline-ms", type=int, default=0, metavar="MS",
        help="per-request deadline propagated to the daemon "
             "(0 = none; daemon answers deadline_exceeded on expiry)",
    )
    client.add_argument(
        "--artifact-out", default=None, metavar="PATH",
        help="with the compile op: write the pickled CompiledProgram "
             "blob to PATH",
    )
    client.set_defaults(func=_cmd_client)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # ``fuzz`` reuses the --profile name for its generator profile (a
    # string); only the boolean store_true flag means perf profiling.
    if getattr(args, "profile", False) is True:
        from repro.perf import profiled

        with profiled() as prof:
            status = args.func(args)
        print(prof.to_json())
        return status
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
