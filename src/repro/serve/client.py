"""Synchronous client for the ``repro serve`` daemon.

A thin blocking wrapper over the newline-delimited JSON protocol::

    from repro.serve import ServeClient

    with ServeClient("/tmp/repro.sock") as client:
        client.ping()
        result = client.compile(SOURCE, opt="O3")
        program, meta = client.compiled_program(SOURCE, opt="O3")
        print(client.stats()["cache"]["hit_rate"])

Every request/response pair travels over one long-lived connection;
``request`` raises :class:`ServeError` (carrying the wire error code)
when the daemon answers with an error.  The async load generator in
``benchmarks/bench_serve.py`` speaks the protocol directly instead —
this class optimizes for clarity, not throughput.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError
from repro.serve import protocol


class ServeError(ReproError):
    """An error response from the daemon (or a transport failure)."""

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        self.message = message
        super().__init__(f"[{code}] {message}")


class ServeClient:
    def __init__(
        self, socket_path: str, timeout: float = 120.0
    ) -> None:
        self.socket_path = socket_path
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0

    # -- connection --------------------------------------------------------

    def connect(self) -> "ServeClient":
        if self._sock is not None:
            return self
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
        except OSError as exc:
            sock.close()
            raise ServeError(
                "internal",
                f"cannot connect to {self.socket_path!r}: {exc}",
            ) from exc
        self._sock = sock
        self._file = sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- the protocol ------------------------------------------------------

    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """Sends one request, returns its ``result`` dict.

        Raises :class:`ServeError` with the daemon's error code on an
        error response, and with code ``internal`` on transport
        failures (connection refused, daemon gone mid-request).
        """
        self.connect()
        self._next_id += 1
        request_id = self._next_id
        line = protocol.encode(
            {"id": request_id, "op": op, **params}
        )
        try:
            self._file.write(line)
            self._file.flush()
            raw = self._file.readline()
        except OSError as exc:
            raise ServeError(
                "internal", f"transport failure: {exc}"
            ) from exc
        if not raw:
            raise ServeError(
                "internal", "daemon closed the connection"
            )
        response = protocol.validate_response(json.loads(raw.decode()))
        if response.get("id") != request_id:
            raise ServeError(
                "internal",
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id!r}",
            )
        if not response["ok"]:
            error = response["error"]
            raise ServeError(error["code"], error["message"])
        return response["result"]

    # -- convenience wrappers ----------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")

    def compile(self, source: str, opt: str = "O3") -> Dict[str, Any]:
        return self.request("compile", source=source, opt=opt)

    def analyze(
        self, source: str, level: str = "sync"
    ) -> Dict[str, Any]:
        return self.request("analyze", source=source, level=level)

    def simulate(self, source: str, **params: Any) -> Dict[str, Any]:
        return self.request("simulate", source=source, **params)

    def compiled_program(
        self, source: str, opt: str = "O3"
    ) -> Tuple[Any, Dict[str, Any]]:
        """(CompiledProgram, result meta) — unpickles the artifact."""
        result = self.compile(source, opt=opt)
        blob = base64.b64decode(result["artifact"])
        return pickle.loads(blob), result
