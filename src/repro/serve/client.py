"""Synchronous, fault-tolerant client for the ``repro serve`` daemon.

A blocking wrapper over the newline-delimited JSON protocol::

    from repro.serve import ServeClient

    with ServeClient("/tmp/repro.sock") as client:
        client.ping()
        result = client.compile(SOURCE, opt="O3")
        program, meta = client.compiled_program(SOURCE, opt="O3")
        print(client.stats()["cache"]["hit_rate"])

Resilience model
================

Every serve op is **idempotent**: the daemon addresses work by the
request's content (the artifact key), so replaying a request can only
re-read or re-fill the same cache entry — which makes blanket retry
safe.  On top of that the client layers:

* **Split timeouts** — ``connect_timeout`` bounds the dial,
  ``timeout`` bounds each request/response round trip.
* **Typed transport errors** — a refused dial, a dropped connection,
  a truncated or garbled frame, or a response-id mismatch all raise
  :class:`ServeError` with code ``transport`` (never a bare OSError,
  never a wrong answer).  The connection is torn down first, so a late
  straggler frame can never be mis-correlated with a later request.
* **Bounded retries with decorrelated jitter** —
  :class:`RetryPolicy` retries ``transport`` / ``shutting_down`` /
  ``overloaded`` failures, honoring the server's ``retry_after_ms``
  hint when one is sent.  The request id is stable across attempts of
  one logical request.
* **A circuit breaker** — after ``failure_threshold`` consecutive
  transport-level failures the breaker opens and requests fail fast
  with code ``circuit_open`` until ``reset_timeout`` elapses
  (half-open probe, closing again on the first success).
* **Deadline propagation** — ``deadline_ms`` (protocol v2) rides on
  compile/analyze/simulate requests so the daemon can shed work whose
  client has given up; the daemon answers ``deadline_exceeded``.

The async load generator in ``benchmarks/bench_serve.py`` speaks the
protocol directly instead — this class optimizes for robustness and
clarity, not throughput.
"""

from __future__ import annotations

import base64
import json
import pickle
import random
import socket
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError
from repro.serve import protocol

#: Error codes a retry may fix: the daemon never started the work
#: (refused/overloaded/draining) or the answer was lost in transit.
RETRYABLE_CODES = frozenset(
    {"transport", "shutting_down", "overloaded"}
)

#: deadline_ms rides only on ops that accept it (protocol v2).
_DEADLINE_OPS = frozenset({"compile", "analyze", "simulate"})


class ServeError(ReproError):
    """An error response from the daemon, or a client-side failure.

    ``code`` is one of :data:`repro.serve.protocol.ERROR_CODES` (the
    daemon answered with an error) or
    :data:`repro.serve.protocol.CLIENT_ERROR_CODES` (``transport``:
    the daemon never answered; ``circuit_open``: the client refused to
    try).  ``retry_after_ms`` carries the server's backoff hint when
    one was sent.
    """

    def __init__(
        self,
        code: str,
        message: str,
        retry_after_ms: Optional[int] = None,
    ) -> None:
        self.code = code
        self.message = message
        self.retry_after_ms = retry_after_ms
        super().__init__(f"[{code}] {message}")

    @property
    def retryable(self) -> bool:
        return self.code in RETRYABLE_CODES


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with decorrelated-jitter exponential backoff.

    The delay before attempt *n+1* is drawn uniformly from
    ``[base_delay, 3 * previous_delay]`` and capped at ``max_delay``
    (the "decorrelated jitter" strategy: grows like exponential
    backoff on average, but desynchronizes a thundering herd of
    retrying clients).  A server ``retry_after_ms`` hint acts as a
    floor on the drawn delay.  ``max_attempts=1`` disables retry.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0

    def next_delay(
        self, previous: float, rng: random.Random
    ) -> float:
        low = self.base_delay
        high = max(low, 3.0 * (previous or low))
        return min(self.max_delay, rng.uniform(low, high))


class CircuitBreaker:
    """Fail fast after repeated daemon loss (closed → open → half-open).

    Counts *consecutive* transport-level failures; at
    ``failure_threshold`` the breaker opens and :meth:`allow` answers
    False until ``reset_timeout`` seconds pass, after which one probe
    request is let through (half-open).  A success closes the breaker
    and resets the count; a failure re-opens it for another full
    ``reset_timeout``.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 5.0,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.state = "closed"
        self.failures = 0
        self._opened_at = 0.0

    def allow(self) -> bool:
        if self.state == "open":
            if (
                time.monotonic() - self._opened_at
                >= self.reset_timeout
            ):
                self.state = "half_open"
                return True
            return False
        return True  # closed or half-open probe

    def record_success(self) -> None:
        self.state = "closed"
        self.failures = 0

    def record_failure(self) -> None:
        self.failures += 1
        if (
            self.state == "half_open"
            or self.failures >= self.failure_threshold
        ):
            self.state = "open"
            self._opened_at = time.monotonic()


class ServeClient:
    def __init__(
        self,
        socket_path: str,
        timeout: float = 120.0,
        connect_timeout: float = 5.0,
        deadline_ms: int = 0,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        retry_seed: Optional[int] = None,
    ) -> None:
        self.socket_path = socket_path
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        #: default per-request deadline propagated to the daemon for
        #: artifact ops (0 = none); per-call params override it.
        self.deadline_ms = deadline_ms
        self.retry = retry or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self._rng = random.Random(retry_seed)
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0

    # -- connection --------------------------------------------------------

    def connect(self) -> "ServeClient":
        if self._sock is not None:
            return self
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.connect_timeout)
        try:
            sock.connect(self.socket_path)
        except OSError as exc:
            sock.close()
            raise ServeError(
                "transport",
                f"cannot connect to {self.socket_path!r}: {exc}",
            ) from exc
        sock.settimeout(self.timeout)
        self._sock = sock
        self._file = sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- the protocol ------------------------------------------------------

    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """Sends one request (with retries), returns its ``result``.

        Raises :class:`ServeError` with the daemon's error code on an
        error response, ``transport`` when the daemon never answered,
        and ``circuit_open`` when the breaker is failing fast.
        Retryable failures (:data:`RETRYABLE_CODES`) are retried up to
        ``retry.max_attempts`` times with decorrelated-jitter backoff
        before the last error propagates.
        """
        if (
            op in _DEADLINE_OPS
            and self.deadline_ms > 0
            and "deadline_ms" not in params
        ):
            params["deadline_ms"] = self.deadline_ms
        self._next_id += 1
        request_id = self._next_id
        delay = 0.0
        last_error: Optional[ServeError] = None
        for attempt in range(self.retry.max_attempts):
            if attempt:
                delay = self.retry.next_delay(delay, self._rng)
                if last_error.retry_after_ms is not None:
                    delay = max(
                        delay, last_error.retry_after_ms / 1000.0
                    )
                time.sleep(delay)
            if not self.breaker.allow():
                raise ServeError(
                    "circuit_open",
                    f"circuit breaker is open after "
                    f"{self.breaker.failures} consecutive transport "
                    f"failures; retry after "
                    f"{self.breaker.reset_timeout:g}s",
                )
            try:
                result = self._attempt(request_id, op, params)
            except ServeError as exc:
                if exc.code == "transport":
                    self.breaker.record_failure()
                if not exc.retryable:
                    raise
                last_error = exc
                continue
            self.breaker.record_success()
            return result
        raise last_error

    def _attempt(
        self, request_id: int, op: str, params: Dict[str, Any]
    ) -> Dict[str, Any]:
        """One wire round trip; transport faults tear the connection
        down before raising so a straggler frame from this attempt can
        never be read as the answer to a later request."""
        self.connect()
        line = protocol.encode(
            {"id": request_id, "op": op, **params}
        )
        try:
            self._file.write(line)
            self._file.flush()
            raw = self._file.readline()
        except OSError as exc:
            self.close()
            raise ServeError(
                "transport", f"transport failure: {exc}"
            ) from exc
        if not raw:
            self.close()
            raise ServeError(
                "transport", "daemon closed the connection"
            )
        if not raw.endswith(b"\n"):
            # A frame cut mid-line: the daemon died (or chaos struck)
            # while writing.  Never trust a partial frame.
            self.close()
            raise ServeError(
                "transport", "connection dropped mid-frame"
            )
        try:
            response = protocol.validate_response(
                json.loads(raw.decode("utf-8"))
            )
        except (UnicodeDecodeError, json.JSONDecodeError,
                protocol.ProtocolError) as exc:
            self.close()
            raise ServeError(
                "transport", f"garbled response frame: {exc}"
            ) from exc
        if response.get("id") != request_id:
            self.close()
            raise ServeError(
                "transport",
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id!r}",
            )
        if not response["ok"]:
            error = response["error"]
            raise ServeError(
                error["code"],
                error["message"],
                retry_after_ms=error.get("retry_after_ms"),
            )
        return response["result"]

    # -- convenience wrappers ----------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")

    def compile(self, source: str, opt: str = "O3") -> Dict[str, Any]:
        return self.request("compile", source=source, opt=opt)

    def analyze(
        self, source: str, level: str = "sync"
    ) -> Dict[str, Any]:
        return self.request("analyze", source=source, level=level)

    def simulate(self, source: str, **params: Any) -> Dict[str, Any]:
        return self.request("simulate", source=source, **params)

    def compiled_program(
        self, source: str, opt: str = "O3"
    ) -> Tuple[Any, Dict[str, Any]]:
        """(CompiledProgram, result meta) — unpickles the artifact."""
        result = self.compile(source, opt=opt)
        blob = base64.b64decode(result["artifact"])
        return pickle.loads(blob), result
