"""The ``repro serve`` daemon: compile-as-a-service over a unix socket.

An asyncio server accepting :mod:`repro.serve.protocol` requests
(newline-delimited JSON) and serving compile / analyze / simulate
results out of the content-addressed :class:`~repro.serve.store
.ArtifactCache`, with three layers of work sharing:

1. **Cross-process cache** — the request's content address is probed
   first; a hit answers without compiling anything, including entries
   written by earlier daemon runs, pool workers, or plain CLI runs.
2. **In-flight deduplication** — concurrent requests for the same key
   await one future; N clients compiling the same kernel trigger
   exactly one underlying compile (``serve.dedup_hits`` counts the
   coalesced ones).
3. **Batching onto the compile pool** — cache misses are collected for
   ``batch_window`` seconds and dispatched as one batch to
   :func:`repro.perf.parallel.compile_many`, which fans distinct jobs
   across the existing crash-tolerant worker pool (``jobs`` pool
   width; 0/1 compiles in the dispatcher thread).

Responses are written per-request as they complete, so clients may
pipeline many requests over one connection.  Graceful shutdown (the
``shutdown`` op, or SIGINT/SIGTERM via :func:`serve`) stops accepting,
drains in-flight work for up to ``drain_timeout`` seconds, and removes
the socket.  The wire protocol and operational notes are documented in
docs/SERVING.md.

Degradation under stress is graceful and *typed*, never silent:

* **Admission control** — at most ``max_pending`` artifact requests
  may wait for the compile path; excess requests are refused with an
  ``overloaded`` error carrying a ``retry_after_ms`` hint instead of
  queueing without bound.
* **Deadlines** — a request's ``deadline_ms`` (protocol v2) is
  enforced server-side: a request still unanswered when its deadline
  expires gets ``deadline_exceeded``, and a queued compile all of
  whose waiters have given up is cancelled before it runs
  (``serve.abandoned``).
* **Watchdog** — a compile-pool batch that exceeds
  ``watchdog_timeout`` seconds marks the pool wedged
  (``serve.watchdog.trips``) and the daemon falls back to serial
  in-process compilation, which cannot wedge.
* **Chaos hooks** — a seeded :class:`repro.serve.chaos.ServeFaultPlan`
  (the ``chaos`` config field / ``repro serve --chaos``) injects
  connection refusals, mid-frame disconnects, truncated/garbled
  frames, stalled reads, and daemon crash-at-phase faults for
  resilience drills; ``None`` (the default) is zero-overhead.
"""

from __future__ import annotations

import asyncio
import base64
import contextlib
import hashlib
import os
import pickle
import threading
import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.perf.profiler import Profiler, profiled
from repro.serve import protocol
from repro.serve.protocol import ProtocolError
from repro.serve.store import (
    ArtifactCache,
    default_cache,
    set_default_cache,
)


@dataclass
class ServeConfig:
    """Daemon configuration (mirrors the ``repro serve`` flags)."""

    socket_path: str
    cache_dir: Optional[str] = None
    max_entries: Optional[int] = None
    max_bytes: Optional[int] = None
    #: Seconds a dispatch waits to coalesce further cache misses into
    #: one pool batch.  0 disables batching (dispatch immediately).
    batch_window: float = 0.002
    #: Compile-pool width for a batch (None = auto, 0/1 = in-process).
    jobs: Optional[int] = 0
    drain_timeout: float = 10.0
    #: None = honor ``REPRO_COMPILE_CACHE``; False = memory-only serving
    #: (in-flight dedup still applies, nothing touches disk).
    use_cache: Optional[bool] = None
    #: Admission control: maximum artifact requests queued for the
    #: compile path before new ones are refused with ``overloaded``.
    max_pending: int = 256
    #: Seconds a compile-pool batch may take before the pool is
    #: declared wedged and the daemon falls back to serial compiles.
    watchdog_timeout: float = 30.0
    #: A seeded :class:`repro.serve.chaos.ServeFaultPlan` injecting
    #: transport/daemon faults (resilience drills); None = no chaos.
    chaos: Optional[Any] = None


class ChaosCrash(BaseException):
    """An injected daemon crash (chaos testing).

    A ``BaseException`` so no ``except Exception`` recovery path can
    accidentally swallow the simulated death: the daemon's event loop
    is already being torn down when this is raised.
    """

    def __init__(self, phase: str) -> None:
        self.phase = phase
        super().__init__(f"injected daemon crash at phase {phase!r}")


class Server:
    """One daemon instance bound to a unix socket."""

    def __init__(
        self,
        config: ServeConfig,
        cache: Optional[ArtifactCache] = None,
    ) -> None:
        self.config = config
        self.cache = cache or ArtifactCache(
            root=config.cache_dir,
            max_entries=config.max_entries,
            max_bytes=config.max_bytes,
        )
        if config.use_cache is not None:
            self.cache_enabled = config.use_cache
        else:
            self.cache_enabled = (
                os.environ.get("REPRO_COMPILE_CACHE", "1") != "0"
            )
        self.profiler = Profiler()
        self.chaos = config.chaos
        self._inflight: Dict[str, asyncio.Future] = {}
        self._waiters: Dict[str, int] = {}
        self._abandoned: set = set()
        self._pool_healthy = True
        self._queue: Optional[asyncio.Queue] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._conn_tasks: set = set()
        self._writers: set = set()
        self._closing = False
        self._crashed = False
        self._done: Optional[asyncio.Event] = None
        self._started = time.monotonic()
        self._prev_default: Optional[ArtifactCache] = None
        self._prof_cm = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._queue = asyncio.Queue()
        self._done = asyncio.Event()
        # In-process compiles (pool fallbacks, jobs=0) must hit this
        # store, not an environment-derived one.
        self._prev_default = set_default_cache(self.cache)
        # Everything on the loop thread (cache probes, bookkeeping)
        # counts against the daemon's own profiler.
        self._prof_cm = profiled(self.profiler)
        self._prof_cm.__enter__()
        # Probe-unlink-bind must be atomic against a second daemon
        # racing for the same path: without the lock, B can probe
        # while A holds the path bound-but-unprobed, conclude "stale",
        # and unlink A's live socket — two listeners, one orphaned
        # socket file.  An flock on <path>.lock serializes the dance.
        lock_fd = self._acquire_socket_lock()
        try:
            self._remove_stale_socket()
            self._server = await asyncio.start_unix_server(
                self._handle_client,
                path=self.config.socket_path,
                limit=protocol.MAX_LINE_BYTES,
            )
        finally:
            os.close(lock_fd)  # releases the flock
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    def _acquire_socket_lock(self) -> int:
        """An exclusive flock on ``<socket>.lock`` (never unlinked,
        so every contender always locks the same inode)."""
        import fcntl

        fd = os.open(
            self.config.socket_path + ".lock",
            os.O_CREAT | os.O_RDWR, 0o600,
        )
        deadline = time.monotonic() + 10.0
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                return fd
            except OSError:
                if time.monotonic() > deadline:
                    os.close(fd)
                    raise OSError(
                        f"could not lock {self.config.socket_path!r} "
                        "for startup (another daemon is stuck mid-bind?)"
                    )
                time.sleep(0.01)

    def _remove_stale_socket(self) -> None:
        """Unlinks a leftover socket file from a crashed daemon.

        A *live* daemon on the path is detected by connecting; in that
        case startup fails instead of stealing the socket.
        """
        path = self.config.socket_path
        if not os.path.exists(path):
            return
        import socket as socket_module

        probe = socket_module.socket(
            socket_module.AF_UNIX, socket_module.SOCK_STREAM
        )
        try:
            probe.settimeout(0.25)
            probe.connect(path)
        except OSError:
            os.unlink(path)  # stale: the previous daemon died
        else:
            raise OSError(
                f"socket {path!r} already has a live daemon; "
                "shut it down first or pick another --socket"
            )
        finally:
            probe.close()

    # -- injected crashes (chaos) ------------------------------------------

    def _maybe_crash(self, phase: str) -> None:
        """Raises :class:`ChaosCrash` if the fault plan says to die here.

        Callable from the loop thread or a batch thread.  The crash is
        abrupt by design: the listener and every open connection are
        torn down and the loop stopped, with no drain and no socket
        unlink — exactly what a SIGKILL'd daemon leaves behind.
        """
        if self.chaos is None or not self.chaos.crash_at(phase):
            return
        self._count(f"serve.chaos.crash.{phase}")
        self.crash()
        raise ChaosCrash(phase)

    def crash(self) -> None:
        """Abrupt death: abort connections, close the listener, stop
        the loop.  Thread-safe and idempotent."""
        if self._crashed:
            return
        self._crashed = True
        loop = self._loop

        def abort() -> None:
            if self._server is not None:
                self._server.close()
            for writer in list(self._writers):
                with contextlib.suppress(Exception):
                    writer.transport.abort()
            loop.stop()

        with contextlib.suppress(RuntimeError):
            loop.call_soon_threadsafe(abort)

    def begin_shutdown(self) -> None:
        """Starts the graceful drain (idempotent, loop thread only)."""
        if self._closing:
            return
        self._closing = True
        asyncio.get_running_loop().create_task(self._shutdown())

    async def _shutdown(self) -> None:
        try:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            self._maybe_crash("mid_drain")
            pending = [
                future for future in self._inflight.values()
                if not future.done()
            ]
            if pending:
                await asyncio.wait(
                    pending, timeout=self.config.drain_timeout
                )
            if self._dispatcher is not None:
                self._dispatcher.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await self._dispatcher
            for task in list(self._conn_tasks):
                task.cancel()
            with contextlib.suppress(OSError):
                os.unlink(self.config.socket_path)
        finally:
            set_default_cache(self._prev_default)
            if self._prof_cm is not None:
                self._prof_cm.__exit__(None, None, None)
                self._prof_cm = None
            self._done.set()

    async def wait_done(self) -> None:
        await self._done.wait()

    # -- connection handling -----------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        if self.chaos is not None and self.chaos.refuse_connection():
            # Injected connection refusal: hang up before reading a
            # byte, the way an out-of-fds or dying daemon would.
            self._count("serve.chaos.refused")
            with contextlib.suppress(Exception):
                writer.close()
            return
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        line_tasks: set = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError,
                        ValueError):
                    break
                if not line:
                    break
                # Each line is served concurrently so one slow compile
                # does not head-of-line block a pipelined connection.
                line_task = asyncio.create_task(
                    self._handle_line(line, writer, write_lock)
                )
                line_tasks.add(line_task)
                line_task.add_done_callback(line_tasks.discard)
            if line_tasks:
                await asyncio.gather(*line_tasks, return_exceptions=True)
        finally:
            for line_task in line_tasks:
                line_task.cancel()
            with contextlib.suppress(Exception):
                writer.close()
            self._writers.discard(writer)
            self._conn_tasks.discard(task)

    async def _handle_line(self, line, writer, write_lock) -> None:
        request_id: Any = None
        try:
            obj = protocol.decode_line(line)
            request_id = obj.get("id")
            request = protocol.validate_request(obj)
            response = await self._respond(request)
        except ProtocolError as exc:
            response = protocol.error_response(
                request_id, exc.code, exc.message,
                retry_after_ms=exc.retry_after_ms,
            )
        except Exception as exc:  # noqa: BLE001 - must answer the client
            response = protocol.error_response(
                request_id, "internal", str(exc).splitlines()[0]
            )
        await self._send_response(writer, write_lock, response)

    async def _send_response(self, writer, write_lock, response) -> None:
        """Writes one response frame, with chaos-injected transport
        faults (stalls, truncation, garbling, disconnects) applied."""
        data = protocol.encode(response)
        action = "deliver"
        if self.chaos is not None:
            action, arg = self.chaos.response_action(len(data))
        async with write_lock:
            try:
                if action == "stall":
                    # A stalled read from the client's point of view:
                    # the frame arrives, but late.
                    self._count("serve.chaos.stalled")
                    await asyncio.sleep(arg)
                elif action == "disconnect":
                    # Mid-frame disconnect, zero bytes delivered.
                    self._count("serve.chaos.disconnected")
                    writer.transport.abort()
                    return
                elif action == "truncate":
                    # Partial frame, then a hard cut: the client must
                    # treat the half-line as a transport failure.
                    self._count("serve.chaos.truncated")
                    writer.write(data[: max(1, int(arg))])
                    await writer.drain()
                    writer.transport.abort()
                    return
                elif action == "garble":
                    # Flip bytes inside the frame (newline preserved):
                    # the client sees undecodable JSON.
                    self._count("serve.chaos.garbled")
                    data = self.chaos.garble_frame(data)
                writer.write(data)
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass  # client went away; nothing to tell it

    async def _respond(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request["op"]
        self._count(f"serve.requests.{op}")
        if op == "ping":
            return protocol.ok_response(request["id"], {
                "pong": True,
                "version": protocol.PROTOCOL_VERSION,
                "pid": os.getpid(),
            })
        if op == "stats":
            return protocol.ok_response(request["id"], self._stats())
        if op == "shutdown":
            response = protocol.ok_response(
                request["id"], {"draining": True}
            )
            # Respond first, then drain: the caller gets its ack.
            asyncio.get_running_loop().call_soon(self.begin_shutdown)
            return response
        if self._closing:
            raise ProtocolError(
                "shutting_down",
                "daemon is draining; not accepting work",
                retry_after_ms=self._retry_after_ms(),
            )
        payload = await self._serve_artifact(request)
        return protocol.ok_response(request["id"], payload)

    def _retry_after_ms(self) -> int:
        """The hint sent with retryable refusals: roughly one batch
        window plus a share of the current backlog."""
        backlog = self._queue.qsize() if self._queue is not None else 0
        return int(self.config.batch_window * 1000) + 50 + 10 * backlog

    # -- artifact serving --------------------------------------------------

    def _key_for(self, request: Dict[str, Any]) -> str:
        op = request["op"]
        if op == "compile":
            # Must match perf.parallel's derivation so daemon, pool
            # workers, and plain CLI runs share one set of entries.
            return self.cache.key(
                "compile", source=request["source"], level=request["opt"]
            )
        if op == "analyze":
            return self.cache.key(
                "analyze", source=request["source"],
                level=request["level"],
            )
        return self.cache.key(
            "simulate",
            source=request["source"],
            level=request["opt"],
            procs=request["procs"],
            machine=request["machine"],
            seed=request["seed"],
            memory_model=request["memory_model"],
            drain_seed=request["drain_seed"],
        )

    async def _serve_artifact(
        self, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        key = self._key_for(request)
        loop = asyncio.get_running_loop()
        deadline_ms = int(request.get("deadline_ms", 0) or 0)
        deadline = (
            loop.time() + deadline_ms / 1000.0 if deadline_ms > 0
            else None
        )
        if self.cache_enabled:
            blob = self.cache.get_bytes(key)
            if blob is not None:
                payload = _payload_from_blob(request["op"], blob)
                if payload is not None:
                    payload["cached"] = True
                    payload["cache_key"] = key
                    return payload
                # Digest matched but the payload would not rebuild:
                # quarantine it so the recompile below overwrites a
                # clean slate instead of racing a poisoned entry.
                self.cache.quarantine(key)
        future = self._inflight.get(key)
        if future is not None and not future.cancelled():
            self._count("serve.dedup_hits")
        else:
            if (
                self.config.max_pending
                and self._queue.qsize() >= self.config.max_pending
            ):
                self._count("serve.overloaded")
                raise ProtocolError(
                    "overloaded",
                    f"pending queue is full "
                    f"({self.config.max_pending} requests); "
                    "retry after the hinted backoff",
                    retry_after_ms=self._retry_after_ms(),
                )
            future = loop.create_future()
            self._inflight[key] = future
            await self._queue.put((key, request))
        # A new waiter revives a job every previous waiter abandoned.
        self._abandoned.discard(key)
        self._waiters[key] = self._waiters.get(key, 0) + 1
        try:
            # shield: one client disconnecting must not cancel the
            # shared compile future out from under the other waiters.
            if deadline is None:
                payload = dict(await asyncio.shield(future))
            else:
                try:
                    payload = dict(await asyncio.wait_for(
                        asyncio.shield(future),
                        max(0.0, deadline - loop.time()),
                    ))
                except asyncio.TimeoutError:
                    self._count("serve.deadline_exceeded")
                    raise ProtocolError(
                        "deadline_exceeded",
                        f"deadline of {deadline_ms}ms expired before "
                        "the artifact was ready",
                    ) from None
        finally:
            remaining = self._waiters.get(key, 1) - 1
            if remaining <= 0:
                self._waiters.pop(key, None)
                if not future.done():
                    # Every waiter gave up (deadline/disconnect): mark
                    # the queued job abandoned so the dispatcher skips
                    # it instead of compiling for nobody.
                    self._abandoned.add(key)
            else:
                self._waiters[key] = remaining
        payload["cached"] = False
        payload["cache_key"] = key
        return payload

    async def _dispatch_loop(self) -> None:
        while True:
            first = await self._queue.get()
            batch: List[Tuple[str, Dict[str, Any]]] = [first]
            if self.config.batch_window > 0:
                loop = asyncio.get_running_loop()
                deadline = loop.time() + self.config.batch_window
                while True:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        batch.append(await asyncio.wait_for(
                            self._queue.get(), remaining
                        ))
                    except asyncio.TimeoutError:
                        break
            batch = self._drop_abandoned(batch)
            if not batch:
                continue
            try:
                self._maybe_crash("mid_batch")
                self._count("serve.batches")
                self._count("serve.batched_requests", len(batch))
                results = await asyncio.to_thread(self._run_batch, batch)
            except ChaosCrash:
                # crash() has already torn the loop down; swallowing
                # here just keeps the dead dispatcher task quiet.
                return
            for key, outcome in results.items():
                future = self._inflight.pop(key, None)
                if future is None or future.done():
                    continue
                status, value = outcome
                if status == "ok":
                    future.set_result(value)
                else:
                    code, message = value
                    future.set_exception(ProtocolError(code, message))

    def _drop_abandoned(
        self, batch: List[Tuple[str, Dict[str, Any]]]
    ) -> List[Tuple[str, Dict[str, Any]]]:
        """Cancels queued jobs whose waiters have all given up."""
        live: List[Tuple[str, Dict[str, Any]]] = []
        for key, request in batch:
            if key in self._abandoned and not self._waiters.get(key):
                self._abandoned.discard(key)
                future = self._inflight.pop(key, None)
                if future is not None and not future.done():
                    future.cancel()
                self._count("serve.abandoned")
                continue
            live.append((key, request))
        return live

    # -- the batch worker (runs in a thread off the event loop) ------------

    def _run_batch(
        self, batch: List[Tuple[str, Dict[str, Any]]]
    ) -> Dict[str, Any]:
        results: Dict[str, Any] = {}
        with profiled(self.profiler):
            compile_items = [
                (key, request) for key, request in batch
                if request["op"] == "compile"
            ]
            if compile_items:
                results.update(self._run_compiles(compile_items))
            for key, request in batch:
                if request["op"] == "analyze":
                    results[key] = self._guard(
                        key, self._run_analyze, request
                    )
                elif request["op"] == "simulate":
                    results[key] = self._guard(
                        key, self._run_simulate, request
                    )
        return results

    def _guard(self, key: str, fn, request) -> Tuple[str, Any]:
        try:
            payload = fn(request)
        except Exception as exc:  # noqa: BLE001 - mapped to wire codes
            code = protocol.error_code_for(exc) or "internal"
            return "error", (code, str(exc).splitlines()[0])
        self._maybe_crash("pre_cache_put")
        if self.cache_enabled:
            self.cache.put_bytes(key, pickle.dumps(payload))
        return "ok", payload

    def _pool_batch_with_watchdog(
        self, jobs: List[Tuple[str, str]]
    ) -> Optional[List[Any]]:
        """``compile_many`` under a watchdog; None = use serial path.

        The pool itself is crash-tolerant, but a *wedged* pool (worker
        deadlock, a stuck semaphore, an injected ``wedge`` fault) can
        stall a batch forever.  The batch runs on a helper thread; if
        it outlives ``watchdog_timeout`` the pool is declared unhealthy
        — this batch and every later one compile serially in-process,
        which cannot wedge.  A wedged helper thread eventually finishes
        or dies with the process; its late results are discarded.
        """
        import threading as threading_module

        from repro.perf.parallel import compile_many

        box: Dict[str, Any] = {}

        def work() -> None:
            try:
                if self.chaos is not None:
                    wedge = self.chaos.pool_wedge_seconds()
                    if wedge > 0:
                        self._count("serve.chaos.wedged")
                        time.sleep(wedge)
                box["programs"] = compile_many(
                    jobs, processes=self.config.jobs, use_cache=False
                )
            except BaseException as exc:  # noqa: BLE001 - boxed
                box["error"] = exc

        worker = threading_module.Thread(
            target=work, name="repro-serve-pool-batch", daemon=True
        )
        worker.start()
        worker.join(self.config.watchdog_timeout)
        if worker.is_alive():
            self._pool_healthy = False
            self._count("serve.watchdog.trips")
            return None
        if "error" in box:
            if isinstance(box["error"], ChaosCrash):
                raise box["error"]
            return None  # re-run serially for per-job verdicts
        return box.get("programs")

    def _run_compiles(
        self, items: List[Tuple[str, Dict[str, Any]]]
    ) -> Dict[str, Any]:
        """Compiles a batch through the pool, isolating per-job errors.

        The happy path fans every job out with one
        :func:`~repro.perf.parallel.compile_many` call (the pool's
        crash tolerance included); if *any* job raises a compile error
        — or the watchdog declares the pool wedged — the batch re-runs
        serially so each request gets its own verdict instead of the
        whole batch failing.
        """
        from repro import OptLevel, compile_source

        results: Dict[str, Any] = {}
        jobs = [
            (request["source"], request["opt"]) for _key, request in items
        ]
        programs: Optional[List[Any]] = None
        if (
            len(set(jobs)) > 1
            and (self.config.jobs is None or self.config.jobs > 1)
            and self._pool_healthy
        ):
            programs = self._pool_batch_with_watchdog(jobs)
        if programs is not None:
            for (key, _request), program in zip(items, programs):
                results[key] = self._finish_compile(key, program)
            return results
        from repro.perf import profiler as perf

        compiled: Dict[Tuple[str, str], Any] = {}
        for key, request in items:
            job = (request["source"], request["opt"])
            try:
                if job not in compiled:
                    perf.count("compile.pool.jobs")
                    compiled[job] = compile_source(
                        request["source"], OptLevel(request["opt"])
                    )
            except Exception as exc:  # noqa: BLE001 - per-job verdict
                code = protocol.error_code_for(exc) or "internal"
                results[key] = (
                    "error", (code, str(exc).splitlines()[0])
                )
                continue
            results[key] = self._finish_compile(key, compiled[job])
        return results

    def _finish_compile(self, key: str, program) -> Tuple[str, Any]:
        blob = pickle.dumps(program)
        self._maybe_crash("pre_cache_put")
        if self.cache_enabled:
            self.cache.put_bytes(key, blob)
        return "ok", _compile_payload(program, blob)

    def _run_analyze(self, request: Dict[str, Any]) -> Dict[str, Any]:
        from repro import analyze_source
        from repro.analysis.delays import AnalysisLevel

        level = (
            AnalysisLevel.SAS if request["level"] == "sas"
            else AnalysisLevel.SYNC
        )
        result = analyze_source(request["source"], level)
        return {
            "level": request["level"],
            "stats": asdict(result.stats),
            "delay_edges": [
                [str(earlier), str(later)]
                for earlier, later in result.delay_edges()
            ],
        }

    def _run_simulate(self, request: Dict[str, Any]) -> Dict[str, Any]:
        from repro import OptLevel
        from repro.runtime.machine import (
            get_machine,
            validate_memory_model,
        )

        machine = get_machine(request["machine"])
        model = validate_memory_model(request["memory_model"])
        if model != "sc":
            machine = machine.with_memory_model(
                model, request["drain_seed"]
            )
        program = self._compiled(
            request["source"], OptLevel(request["opt"])
        )
        result = program.run(
            request["procs"], machine, seed=request["seed"]
        )
        snapshot = {
            name: list(values)
            for name, values in sorted(result.snapshot().items())
        }
        return {
            "opt": request["opt"],
            "procs": request["procs"],
            "machine": request["machine"],
            "memory_model": model,
            "cycles": result.cycles,
            "instructions": result.instructions,
            "messages": result.total_messages,
            "snapshot": snapshot,
        }

    def _compiled(self, source: str, level):
        """A compiled program via the store (simulate's compile step)."""
        from repro import compile_source
        from repro.perf import profiler as perf

        key = self.cache.key("compile", source=source, level=level.value)
        if self.cache_enabled:
            program = self.cache.get(key)
            if program is not None:
                perf.count("compile.disk_cache_hits")
                return program
        perf.count("compile.pool.jobs")
        program = compile_source(source, level)
        if self.cache_enabled:
            self.cache.put_bytes(key, pickle.dumps(program))
        return program

    # -- telemetry ---------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.profiler.count(name, amount)

    def _stats(self) -> Dict[str, Any]:
        counters = dict(self.profiler.counters)
        requests = {
            name[len("serve.requests."):]: value
            for name, value in counters.items()
            if name.startswith("serve.requests.")
        }
        return {
            "version": protocol.PROTOCOL_VERSION,
            "pid": os.getpid(),
            "uptime_seconds": time.monotonic() - self._started,
            "draining": self._closing,
            "requests": requests,
            "inflight": len(self._inflight),
            "dedup_hits": counters.get("serve.dedup_hits", 0),
            "batches": counters.get("serve.batches", 0),
            "batched_requests": counters.get("serve.batched_requests", 0),
            "overloaded": counters.get("serve.overloaded", 0),
            "deadline_exceeded": counters.get(
                "serve.deadline_exceeded", 0
            ),
            "abandoned": counters.get("serve.abandoned", 0),
            "watchdog_trips": counters.get("serve.watchdog.trips", 0),
            "pool_healthy": self._pool_healthy,
            "max_pending": self.config.max_pending,
            "cache": self.cache.stats(),
            "counters": counters,
        }


# -- payload shaping --------------------------------------------------------


def _compile_payload(program, blob: bytes) -> Dict[str, Any]:
    return {
        "opt": program.opt_level.value,
        "report": asdict(program.report),
        "delay_fences": len(program.delay_fences),
        "artifact": base64.b64encode(blob).decode("ascii"),
        "artifact_sha256": hashlib.sha256(blob).hexdigest(),
        "artifact_bytes": len(blob),
    }


def _payload_from_blob(op: str, blob: bytes) -> Optional[Dict[str, Any]]:
    """Rebuilds a response payload from a cached blob (None = corrupt).

    Compile entries store the pickled ``CompiledProgram`` itself — the
    exact bytes ``compile_with_cache`` and the pool workers write — so
    the served artifact is byte-identical to the stored one.  Analyze
    and simulate entries store their (JSON-able) payload dict pickled.
    """
    try:
        value = pickle.loads(blob)
    except (pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, ValueError):
        return None
    if op == "compile":
        return _compile_payload(value, blob)
    return dict(value) if isinstance(value, dict) else None


# -- entry points -----------------------------------------------------------


async def serve(config: ServeConfig) -> None:
    """Runs a daemon until graceful shutdown (signal or shutdown op)."""
    import signal

    server = Server(config)
    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(signum, server.begin_shutdown)
    await server.wait_done()


class ServerThread:
    """A daemon on a background thread (tests, benches, embedding).

    ``start()`` blocks until the socket is accepting; ``stop()`` drains
    gracefully; ``kill()`` stops the event loop abruptly — the
    simulated daemon crash (no drain, no socket cleanup) the restart
    tests recover from.
    """

    def __init__(
        self,
        config: ServeConfig,
        cache: Optional[ArtifactCache] = None,
    ) -> None:
        self.config = config
        self._cache = cache
        self.server: Optional[Server] = None
        self.error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("repro serve thread failed to start")
        if self.error is not None:
            raise self.error
        return self

    def _run(self) -> None:
        previous = default_cache()
        try:
            asyncio.run(self._main())
        except RuntimeError:
            # loop.stop() via kill(): asyncio.run aborts mid-future.
            pass
        except BaseException as exc:  # noqa: BLE001 - surfaced in start()
            self.error = exc
        finally:
            set_default_cache(previous)
            self._ready.set()

    async def _main(self) -> None:
        self.server = Server(self.config, cache=self._cache)
        self._loop = asyncio.get_running_loop()
        await self.server.start()
        self._ready.set()
        await self.server.wait_done()

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._thread.is_alive():
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self.server.begin_shutdown)
        self._thread.join(timeout)

    def kill(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._thread.is_alive():
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        # A real crash closes the listening fd with the process; here
        # the process survives, so close it by hand.  The socket *file*
        # is deliberately left behind for stale-socket recovery tests.
        if self.server is not None and self.server._server is not None:
            for sock in self.server._server.sockets:
                with contextlib.suppress(OSError, ValueError):
                    os.close(sock.fileno())
