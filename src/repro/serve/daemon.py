"""The ``repro serve`` daemon: compile-as-a-service over a unix socket.

An asyncio server accepting :mod:`repro.serve.protocol` requests
(newline-delimited JSON) and serving compile / analyze / simulate
results out of the content-addressed :class:`~repro.serve.store
.ArtifactCache`, with three layers of work sharing:

1. **Cross-process cache** — the request's content address is probed
   first; a hit answers without compiling anything, including entries
   written by earlier daemon runs, pool workers, or plain CLI runs.
2. **In-flight deduplication** — concurrent requests for the same key
   await one future; N clients compiling the same kernel trigger
   exactly one underlying compile (``serve.dedup_hits`` counts the
   coalesced ones).
3. **Batching onto the compile pool** — cache misses are collected for
   ``batch_window`` seconds and dispatched as one batch to
   :func:`repro.perf.parallel.compile_many`, which fans distinct jobs
   across the existing crash-tolerant worker pool (``jobs`` pool
   width; 0/1 compiles in the dispatcher thread).

Responses are written per-request as they complete, so clients may
pipeline many requests over one connection.  Graceful shutdown (the
``shutdown`` op, or SIGINT/SIGTERM via :func:`serve`) stops accepting,
drains in-flight work for up to ``drain_timeout`` seconds, and removes
the socket.  The wire protocol and operational notes are documented in
docs/SERVING.md.
"""

from __future__ import annotations

import asyncio
import base64
import contextlib
import hashlib
import os
import pickle
import threading
import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.perf.profiler import Profiler, profiled
from repro.serve import protocol
from repro.serve.protocol import ProtocolError
from repro.serve.store import (
    ArtifactCache,
    default_cache,
    set_default_cache,
)


@dataclass
class ServeConfig:
    """Daemon configuration (mirrors the ``repro serve`` flags)."""

    socket_path: str
    cache_dir: Optional[str] = None
    max_entries: Optional[int] = None
    max_bytes: Optional[int] = None
    #: Seconds a dispatch waits to coalesce further cache misses into
    #: one pool batch.  0 disables batching (dispatch immediately).
    batch_window: float = 0.002
    #: Compile-pool width for a batch (None = auto, 0/1 = in-process).
    jobs: Optional[int] = 0
    drain_timeout: float = 10.0
    #: None = honor ``REPRO_COMPILE_CACHE``; False = memory-only serving
    #: (in-flight dedup still applies, nothing touches disk).
    use_cache: Optional[bool] = None


class Server:
    """One daemon instance bound to a unix socket."""

    def __init__(
        self,
        config: ServeConfig,
        cache: Optional[ArtifactCache] = None,
    ) -> None:
        self.config = config
        self.cache = cache or ArtifactCache(
            root=config.cache_dir,
            max_entries=config.max_entries,
            max_bytes=config.max_bytes,
        )
        if config.use_cache is not None:
            self.cache_enabled = config.use_cache
        else:
            self.cache_enabled = (
                os.environ.get("REPRO_COMPILE_CACHE", "1") != "0"
            )
        self.profiler = Profiler()
        self._inflight: Dict[str, asyncio.Future] = {}
        self._queue: Optional[asyncio.Queue] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._conn_tasks: set = set()
        self._closing = False
        self._done: Optional[asyncio.Event] = None
        self._started = time.monotonic()
        self._prev_default: Optional[ArtifactCache] = None
        self._prof_cm = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._queue = asyncio.Queue()
        self._done = asyncio.Event()
        # In-process compiles (pool fallbacks, jobs=0) must hit this
        # store, not an environment-derived one.
        self._prev_default = set_default_cache(self.cache)
        # Everything on the loop thread (cache probes, bookkeeping)
        # counts against the daemon's own profiler.
        self._prof_cm = profiled(self.profiler)
        self._prof_cm.__enter__()
        self._remove_stale_socket()
        self._server = await asyncio.start_unix_server(
            self._handle_client,
            path=self.config.socket_path,
            limit=protocol.MAX_LINE_BYTES,
        )
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    def _remove_stale_socket(self) -> None:
        """Unlinks a leftover socket file from a crashed daemon.

        A *live* daemon on the path is detected by connecting; in that
        case startup fails instead of stealing the socket.
        """
        path = self.config.socket_path
        if not os.path.exists(path):
            return
        import socket as socket_module

        probe = socket_module.socket(
            socket_module.AF_UNIX, socket_module.SOCK_STREAM
        )
        try:
            probe.settimeout(0.25)
            probe.connect(path)
        except OSError:
            os.unlink(path)  # stale: the previous daemon died
        else:
            raise OSError(
                f"socket {path!r} already has a live daemon; "
                "shut it down first or pick another --socket"
            )
        finally:
            probe.close()

    def begin_shutdown(self) -> None:
        """Starts the graceful drain (idempotent, loop thread only)."""
        if self._closing:
            return
        self._closing = True
        asyncio.get_running_loop().create_task(self._shutdown())

    async def _shutdown(self) -> None:
        try:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            pending = [
                future for future in self._inflight.values()
                if not future.done()
            ]
            if pending:
                await asyncio.wait(
                    pending, timeout=self.config.drain_timeout
                )
            if self._dispatcher is not None:
                self._dispatcher.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await self._dispatcher
            for task in list(self._conn_tasks):
                task.cancel()
            with contextlib.suppress(OSError):
                os.unlink(self.config.socket_path)
        finally:
            set_default_cache(self._prev_default)
            if self._prof_cm is not None:
                self._prof_cm.__exit__(None, None, None)
                self._prof_cm = None
            self._done.set()

    async def wait_done(self) -> None:
        await self._done.wait()

    # -- connection handling -----------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        write_lock = asyncio.Lock()
        line_tasks: set = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError,
                        ValueError):
                    break
                if not line:
                    break
                # Each line is served concurrently so one slow compile
                # does not head-of-line block a pipelined connection.
                line_task = asyncio.create_task(
                    self._handle_line(line, writer, write_lock)
                )
                line_tasks.add(line_task)
                line_task.add_done_callback(line_tasks.discard)
            if line_tasks:
                await asyncio.gather(*line_tasks, return_exceptions=True)
        finally:
            for line_task in line_tasks:
                line_task.cancel()
            with contextlib.suppress(Exception):
                writer.close()
            self._conn_tasks.discard(task)

    async def _handle_line(self, line, writer, write_lock) -> None:
        request_id: Any = None
        try:
            obj = protocol.decode_line(line)
            request_id = obj.get("id")
            request = protocol.validate_request(obj)
            response = await self._respond(request)
        except ProtocolError as exc:
            response = protocol.error_response(
                request_id, exc.code, exc.message
            )
        except Exception as exc:  # noqa: BLE001 - must answer the client
            response = protocol.error_response(
                request_id, "internal", str(exc).splitlines()[0]
            )
        async with write_lock:
            try:
                writer.write(protocol.encode(response))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass  # client went away; nothing to tell it

    async def _respond(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request["op"]
        self._count(f"serve.requests.{op}")
        if op == "ping":
            return protocol.ok_response(request["id"], {
                "pong": True,
                "version": protocol.PROTOCOL_VERSION,
                "pid": os.getpid(),
            })
        if op == "stats":
            return protocol.ok_response(request["id"], self._stats())
        if op == "shutdown":
            response = protocol.ok_response(
                request["id"], {"draining": True}
            )
            # Respond first, then drain: the caller gets its ack.
            asyncio.get_running_loop().call_soon(self.begin_shutdown)
            return response
        if self._closing:
            raise ProtocolError(
                "shutting_down", "daemon is draining; not accepting work"
            )
        payload = await self._serve_artifact(request)
        return protocol.ok_response(request["id"], payload)

    # -- artifact serving --------------------------------------------------

    def _key_for(self, request: Dict[str, Any]) -> str:
        op = request["op"]
        if op == "compile":
            # Must match perf.parallel's derivation so daemon, pool
            # workers, and plain CLI runs share one set of entries.
            return self.cache.key(
                "compile", source=request["source"], level=request["opt"]
            )
        if op == "analyze":
            return self.cache.key(
                "analyze", source=request["source"],
                level=request["level"],
            )
        return self.cache.key(
            "simulate",
            source=request["source"],
            level=request["opt"],
            procs=request["procs"],
            machine=request["machine"],
            seed=request["seed"],
            memory_model=request["memory_model"],
            drain_seed=request["drain_seed"],
        )

    async def _serve_artifact(
        self, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        key = self._key_for(request)
        if self.cache_enabled:
            blob = self.cache.get_bytes(key)
            if blob is not None:
                payload = _payload_from_blob(request["op"], blob)
                if payload is not None:
                    payload["cached"] = True
                    payload["cache_key"] = key
                    return payload
        future = self._inflight.get(key)
        if future is not None:
            self._count("serve.dedup_hits")
        else:
            future = asyncio.get_running_loop().create_future()
            self._inflight[key] = future
            await self._queue.put((key, request))
        # shield: one client disconnecting must not cancel the shared
        # compile future out from under the other waiters.
        payload = dict(await asyncio.shield(future))
        payload["cached"] = False
        payload["cache_key"] = key
        return payload

    async def _dispatch_loop(self) -> None:
        while True:
            first = await self._queue.get()
            batch: List[Tuple[str, Dict[str, Any]]] = [first]
            if self.config.batch_window > 0:
                loop = asyncio.get_running_loop()
                deadline = loop.time() + self.config.batch_window
                while True:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        batch.append(await asyncio.wait_for(
                            self._queue.get(), remaining
                        ))
                    except asyncio.TimeoutError:
                        break
            self._count("serve.batches")
            self._count("serve.batched_requests", len(batch))
            results = await asyncio.to_thread(self._run_batch, batch)
            for key, outcome in results.items():
                future = self._inflight.pop(key, None)
                if future is None or future.done():
                    continue
                status, value = outcome
                if status == "ok":
                    future.set_result(value)
                else:
                    code, message = value
                    future.set_exception(ProtocolError(code, message))

    # -- the batch worker (runs in a thread off the event loop) ------------

    def _run_batch(
        self, batch: List[Tuple[str, Dict[str, Any]]]
    ) -> Dict[str, Any]:
        results: Dict[str, Any] = {}
        with profiled(self.profiler):
            compile_items = [
                (key, request) for key, request in batch
                if request["op"] == "compile"
            ]
            if compile_items:
                results.update(self._run_compiles(compile_items))
            for key, request in batch:
                if request["op"] == "analyze":
                    results[key] = self._guard(
                        key, self._run_analyze, request
                    )
                elif request["op"] == "simulate":
                    results[key] = self._guard(
                        key, self._run_simulate, request
                    )
        return results

    def _guard(self, key: str, fn, request) -> Tuple[str, Any]:
        try:
            payload = fn(request)
        except Exception as exc:  # noqa: BLE001 - mapped to wire codes
            code = protocol.error_code_for(exc) or "internal"
            return "error", (code, str(exc).splitlines()[0])
        if self.cache_enabled:
            self.cache.put_bytes(key, pickle.dumps(payload))
        return "ok", payload

    def _run_compiles(
        self, items: List[Tuple[str, Dict[str, Any]]]
    ) -> Dict[str, Any]:
        """Compiles a batch through the pool, isolating per-job errors.

        The happy path fans every job out with one
        :func:`~repro.perf.parallel.compile_many` call (the pool's
        crash tolerance included); if *any* job raises a compile error
        the batch re-runs serially so each request gets its own
        verdict instead of the whole batch failing.
        """
        from repro import OptLevel, compile_source
        from repro.perf.parallel import compile_many

        results: Dict[str, Any] = {}
        jobs = [
            (request["source"], request["opt"]) for _key, request in items
        ]
        programs: Optional[List[Any]] = None
        if len(set(jobs)) > 1 and (
            self.config.jobs is None or self.config.jobs > 1
        ):
            try:
                programs = compile_many(
                    jobs, processes=self.config.jobs, use_cache=False
                )
            except Exception:  # noqa: BLE001 - re-run serially below
                programs = None
        if programs is not None:
            for (key, _request), program in zip(items, programs):
                results[key] = self._finish_compile(key, program)
            return results
        from repro.perf import profiler as perf

        compiled: Dict[Tuple[str, str], Any] = {}
        for key, request in items:
            job = (request["source"], request["opt"])
            try:
                if job not in compiled:
                    perf.count("compile.pool.jobs")
                    compiled[job] = compile_source(
                        request["source"], OptLevel(request["opt"])
                    )
            except Exception as exc:  # noqa: BLE001 - per-job verdict
                code = protocol.error_code_for(exc) or "internal"
                results[key] = (
                    "error", (code, str(exc).splitlines()[0])
                )
                continue
            results[key] = self._finish_compile(key, compiled[job])
        return results

    def _finish_compile(self, key: str, program) -> Tuple[str, Any]:
        blob = pickle.dumps(program)
        if self.cache_enabled:
            self.cache.put_bytes(key, blob)
        return "ok", _compile_payload(program, blob)

    def _run_analyze(self, request: Dict[str, Any]) -> Dict[str, Any]:
        from repro import analyze_source
        from repro.analysis.delays import AnalysisLevel

        level = (
            AnalysisLevel.SAS if request["level"] == "sas"
            else AnalysisLevel.SYNC
        )
        result = analyze_source(request["source"], level)
        return {
            "level": request["level"],
            "stats": asdict(result.stats),
            "delay_edges": [
                [str(earlier), str(later)]
                for earlier, later in result.delay_edges()
            ],
        }

    def _run_simulate(self, request: Dict[str, Any]) -> Dict[str, Any]:
        from repro import OptLevel
        from repro.runtime.machine import (
            get_machine,
            validate_memory_model,
        )

        machine = get_machine(request["machine"])
        model = validate_memory_model(request["memory_model"])
        if model != "sc":
            machine = machine.with_memory_model(
                model, request["drain_seed"]
            )
        program = self._compiled(
            request["source"], OptLevel(request["opt"])
        )
        result = program.run(
            request["procs"], machine, seed=request["seed"]
        )
        snapshot = {
            name: list(values)
            for name, values in sorted(result.snapshot().items())
        }
        return {
            "opt": request["opt"],
            "procs": request["procs"],
            "machine": request["machine"],
            "memory_model": model,
            "cycles": result.cycles,
            "instructions": result.instructions,
            "messages": result.total_messages,
            "snapshot": snapshot,
        }

    def _compiled(self, source: str, level):
        """A compiled program via the store (simulate's compile step)."""
        from repro import compile_source
        from repro.perf import profiler as perf

        key = self.cache.key("compile", source=source, level=level.value)
        if self.cache_enabled:
            program = self.cache.get(key)
            if program is not None:
                perf.count("compile.disk_cache_hits")
                return program
        perf.count("compile.pool.jobs")
        program = compile_source(source, level)
        if self.cache_enabled:
            self.cache.put_bytes(key, pickle.dumps(program))
        return program

    # -- telemetry ---------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.profiler.count(name, amount)

    def _stats(self) -> Dict[str, Any]:
        counters = dict(self.profiler.counters)
        requests = {
            name[len("serve.requests."):]: value
            for name, value in counters.items()
            if name.startswith("serve.requests.")
        }
        return {
            "version": protocol.PROTOCOL_VERSION,
            "pid": os.getpid(),
            "uptime_seconds": time.monotonic() - self._started,
            "draining": self._closing,
            "requests": requests,
            "inflight": len(self._inflight),
            "dedup_hits": counters.get("serve.dedup_hits", 0),
            "batches": counters.get("serve.batches", 0),
            "batched_requests": counters.get("serve.batched_requests", 0),
            "cache": self.cache.stats(),
            "counters": counters,
        }


# -- payload shaping --------------------------------------------------------


def _compile_payload(program, blob: bytes) -> Dict[str, Any]:
    return {
        "opt": program.opt_level.value,
        "report": asdict(program.report),
        "delay_fences": len(program.delay_fences),
        "artifact": base64.b64encode(blob).decode("ascii"),
        "artifact_sha256": hashlib.sha256(blob).hexdigest(),
        "artifact_bytes": len(blob),
    }


def _payload_from_blob(op: str, blob: bytes) -> Optional[Dict[str, Any]]:
    """Rebuilds a response payload from a cached blob (None = corrupt).

    Compile entries store the pickled ``CompiledProgram`` itself — the
    exact bytes ``compile_with_cache`` and the pool workers write — so
    the served artifact is byte-identical to the stored one.  Analyze
    and simulate entries store their (JSON-able) payload dict pickled.
    """
    try:
        value = pickle.loads(blob)
    except (pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, ValueError):
        return None
    if op == "compile":
        return _compile_payload(value, blob)
    return dict(value) if isinstance(value, dict) else None


# -- entry points -----------------------------------------------------------


async def serve(config: ServeConfig) -> None:
    """Runs a daemon until graceful shutdown (signal or shutdown op)."""
    import signal

    server = Server(config)
    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(signum, server.begin_shutdown)
    await server.wait_done()


class ServerThread:
    """A daemon on a background thread (tests, benches, embedding).

    ``start()`` blocks until the socket is accepting; ``stop()`` drains
    gracefully; ``kill()`` stops the event loop abruptly — the
    simulated daemon crash (no drain, no socket cleanup) the restart
    tests recover from.
    """

    def __init__(
        self,
        config: ServeConfig,
        cache: Optional[ArtifactCache] = None,
    ) -> None:
        self.config = config
        self._cache = cache
        self.server: Optional[Server] = None
        self.error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("repro serve thread failed to start")
        if self.error is not None:
            raise self.error
        return self

    def _run(self) -> None:
        previous = default_cache()
        try:
            asyncio.run(self._main())
        except RuntimeError:
            # loop.stop() via kill(): asyncio.run aborts mid-future.
            pass
        except BaseException as exc:  # noqa: BLE001 - surfaced in start()
            self.error = exc
        finally:
            set_default_cache(previous)
            self._ready.set()

    async def _main(self) -> None:
        self.server = Server(self.config, cache=self._cache)
        self._loop = asyncio.get_running_loop()
        await self.server.start()
        self._ready.set()
        await self.server.wait_done()

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._thread.is_alive():
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self.server.begin_shutdown)
        self._thread.join(timeout)

    def kill(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._thread.is_alive():
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        # A real crash closes the listening fd with the process; here
        # the process survives, so close it by hand.  The socket *file*
        # is deliberately left behind for stale-socket recovery tests.
        if self.server is not None and self.server._server is not None:
            for sock in self.server._server.sockets:
                with contextlib.suppress(OSError, ValueError):
                    os.close(sock.fileno())
