"""Compile-as-a-service: the ``repro serve`` daemon and its substrate.

* :mod:`repro.serve.store` — the content-addressed, sharded, LRU
  artifact store every compile entry point shares
  (:class:`ArtifactCache`);
* :mod:`repro.serve.protocol` — the newline-delimited JSON wire
  protocol (spec: docs/SERVING.md);
* :mod:`repro.serve.daemon` — the asyncio unix-socket daemon with
  in-flight request deduplication and pool batching;
* :mod:`repro.serve.client` — the blocking Python client.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import (
    ServeConfig,
    Server,
    ServerThread,
    serve,
)
from repro.serve.protocol import (
    ERROR_CODES,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.serve.store import (
    ArtifactCache,
    artifact_key,
    code_fingerprint,
    default_cache,
    set_default_cache,
)

__all__ = [
    "ArtifactCache",
    "ERROR_CODES",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "Server",
    "ServerThread",
    "artifact_key",
    "code_fingerprint",
    "default_cache",
    "serve",
    "set_default_cache",
]
