"""Compile-as-a-service: the ``repro serve`` daemon and its substrate.

* :mod:`repro.serve.store` — the content-addressed, sharded, LRU
  artifact store every compile entry point shares
  (:class:`ArtifactCache`), with sha256 digest verification and
  quarantine of corrupt entries;
* :mod:`repro.serve.protocol` — the newline-delimited JSON wire
  protocol (spec: docs/SERVING.md);
* :mod:`repro.serve.daemon` — the asyncio unix-socket daemon with
  in-flight request deduplication, pool batching, admission control,
  deadline enforcement, and a wedged-pool watchdog;
* :mod:`repro.serve.client` — the blocking Python client with split
  timeouts, retries with decorrelated jitter, and a circuit breaker;
* :mod:`repro.serve.chaos` — the seeded fault-injection harness
  (:class:`ServeFaultPlan`, :class:`ChaosHarness`).
"""

from repro.serve.chaos import (
    ChaosCrash,
    ChaosHarness,
    ServeFaultPlan,
)
from repro.serve.client import (
    CircuitBreaker,
    RetryPolicy,
    ServeClient,
    ServeError,
)
from repro.serve.daemon import (
    ServeConfig,
    Server,
    ServerThread,
    serve,
)
from repro.serve.protocol import (
    CLIENT_ERROR_CODES,
    ERROR_CODES,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.serve.store import (
    ArtifactCache,
    artifact_key,
    code_fingerprint,
    default_cache,
    set_default_cache,
)

__all__ = [
    "ArtifactCache",
    "CLIENT_ERROR_CODES",
    "ChaosCrash",
    "ChaosHarness",
    "CircuitBreaker",
    "ERROR_CODES",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RetryPolicy",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeFaultPlan",
    "Server",
    "ServerThread",
    "artifact_key",
    "code_fingerprint",
    "default_cache",
    "serve",
    "set_default_cache",
]
