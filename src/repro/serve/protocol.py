"""The ``repro serve`` wire protocol: newline-delimited JSON.

One request per line, one response per line, UTF-8, over a local unix
socket.  Requests carry a client-chosen ``id`` that the matching
response echoes, so clients may pipeline many requests over one
connection and correlate the (possibly reordered) responses.

The full schema — field tables, every error code, worked examples — is
specified in docs/SERVING.md; ``tests/serve/test_docs_sync.py``
round-trips every example in that document through this module, so the
spec and the implementation cannot drift apart.

Request::

    {"id": 1, "op": "compile", "source": "...", "opt": "O3"}

Response (one of)::

    {"id": 1, "ok": true, "result": {...}}
    {"id": 1, "ok": false, "error": {"code": "...", "message": "..."}}
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

#: Version 2 added the optional ``deadline_ms`` request field plus the
#: ``overloaded`` / ``deadline_exceeded`` error codes and the optional
#: ``retry_after_ms`` error hint.  Both directions stay backward
#: compatible: a v1 client simply never sends a deadline and never
#: sees the new codes' triggers (no deadline ⇒ no expiry; an
#: overloaded v2 daemon still answers, just with the typed error).
PROTOCOL_VERSION = 2

#: A line longer than this is rejected with ``bad_request`` rather than
#: buffered without bound (compiled-artifact responses stay well under).
MAX_LINE_BYTES = 64 * 1024 * 1024

OPS = ("ping", "stats", "shutdown", "compile", "analyze", "simulate")

ERROR_CODES = (
    "parse_error",        # the request line was not valid JSON
    "bad_request",        # valid JSON, but not a valid request
    "compile_error",      # the source failed to lex/parse/check/compile
    "runtime_fault",      # the simulation raised a RuntimeFault
    "deadlock",           # the simulation deadlocked
    "shutting_down",      # the daemon is draining; retry elsewhere/later
    "overloaded",         # admission control: pending queue full
    "deadline_exceeded",  # the request's deadline_ms expired server-side
    "internal",           # unexpected server-side failure
)

#: Client-side error codes :class:`repro.serve.client.ServeError` may
#: carry in addition to the wire codes above: they describe failures
#: the daemon never got to answer.
CLIENT_ERROR_CODES = (
    "transport",     # connect/read/write failed or the frame was garbled
    "circuit_open",  # the client's circuit breaker is failing fast
)

#: Per-op required and optional fields (optional ones with defaults).
_REQUIRED: Dict[str, tuple] = {
    "ping": (),
    "stats": (),
    "shutdown": (),
    "compile": ("source",),
    "analyze": ("source",),
    "simulate": ("source",),
}
_OPTIONAL: Dict[str, Dict[str, Any]] = {
    "ping": {},
    "stats": {},
    "shutdown": {},
    "compile": {"opt": "O3", "deadline_ms": 0},
    "analyze": {"level": "sync", "deadline_ms": 0},
    "simulate": {
        "opt": "O3",
        "procs": 8,
        "machine": "cm5",
        "seed": 0,
        "memory_model": "sc",
        "drain_seed": 0,
        "deadline_ms": 0,
    },
}


class ProtocolError(Exception):
    """A malformed request/response, tagged with its wire error code.

    ``retry_after_ms`` is the optional server hint for retryable codes
    (``overloaded``, ``shutting_down``): how long a client should wait
    before trying again.
    """

    def __init__(
        self,
        code: str,
        message: str,
        retry_after_ms: Optional[int] = None,
    ) -> None:
        assert code in ERROR_CODES, code
        self.code = code
        self.message = message
        self.retry_after_ms = retry_after_ms
        super().__init__(f"[{code}] {message}")


def encode(obj: Dict[str, Any]) -> bytes:
    """One wire line: canonical JSON plus the terminating newline."""
    return json.dumps(obj, sort_keys=True).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            "bad_request",
            f"line exceeds {MAX_LINE_BYTES} bytes",
        )
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("parse_error", f"invalid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            "bad_request", "a request must be a JSON object"
        )
    return obj


def validate_request(obj: Dict[str, Any]) -> Dict[str, Any]:
    """Checks shape, fills defaults; raises :class:`ProtocolError`.

    Returns a normalized copy: ``id``, ``op``, and every field the op
    understands (unknown fields are rejected — a typo'd parameter must
    not silently fall back to a default).
    """
    op = obj.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(
            "bad_request",
            f"unknown op {op!r}; expected one of {', '.join(OPS)}",
        )
    request: Dict[str, Any] = {"id": obj.get("id"), "op": op}
    known = set(_REQUIRED[op]) | set(_OPTIONAL[op]) | {"id", "op"}
    unknown = sorted(set(obj) - known)
    if unknown:
        raise ProtocolError(
            "bad_request",
            f"unknown field(s) for op {op!r}: {', '.join(unknown)}",
        )
    for field in _REQUIRED[op]:
        value = obj.get(field)
        if not isinstance(value, str) or not value:
            raise ProtocolError(
                "bad_request",
                f"op {op!r} requires a non-empty string {field!r}",
            )
        request[field] = value
    for field, default in _OPTIONAL[op].items():
        value = obj.get(field, default)
        if not isinstance(value, type(default)) or isinstance(value, bool):
            raise ProtocolError(
                "bad_request",
                f"field {field!r} must be a "
                f"{type(default).__name__}, got {value!r}",
            )
        request[field] = value
    return request


def ok_response(
    request_id: Any, result: Dict[str, Any]
) -> Dict[str, Any]:
    return {"id": request_id, "ok": True, "result": result}


def error_response(
    request_id: Any,
    code: str,
    message: str,
    retry_after_ms: Optional[int] = None,
) -> Dict[str, Any]:
    assert code in ERROR_CODES, code
    error: Dict[str, Any] = {"code": code, "message": message}
    if retry_after_ms is not None:
        error["retry_after_ms"] = int(retry_after_ms)
    return {"id": request_id, "ok": False, "error": error}


def validate_response(obj: Dict[str, Any]) -> Dict[str, Any]:
    """Checks a decoded response's shape (client side and doc tests)."""
    if "ok" not in obj or not isinstance(obj["ok"], bool):
        raise ProtocolError(
            "bad_request", "a response must carry a boolean 'ok'"
        )
    if obj["ok"]:
        if not isinstance(obj.get("result"), dict):
            raise ProtocolError(
                "bad_request", "an ok response must carry a 'result' object"
            )
    else:
        error = obj.get("error")
        if (
            not isinstance(error, dict)
            or error.get("code") not in ERROR_CODES
            or not isinstance(error.get("message"), str)
        ):
            raise ProtocolError(
                "bad_request",
                "an error response must carry {'code': <known code>, "
                "'message': str}",
            )
        retry_after = error.get("retry_after_ms")
        if retry_after is not None and (
            isinstance(retry_after, bool)
            or not isinstance(retry_after, int)
            or retry_after < 0
        ):
            raise ProtocolError(
                "bad_request",
                "retry_after_ms must be a non-negative integer",
            )
    return obj


def error_code_for(exc: BaseException) -> Optional[str]:
    """The wire error code for a repro exception, or None (internal)."""
    from repro.errors import (
        AnalysisError,
        CodegenError,
        DeadlockError,
        RuntimeFault,
        SourceError,
    )

    if isinstance(exc, DeadlockError):
        return "deadlock"
    if isinstance(exc, RuntimeFault):
        return "runtime_fault"
    if isinstance(exc, (SourceError, AnalysisError, CodegenError)):
        return "compile_error"
    if isinstance(exc, (ValueError, KeyError)):
        # get_machine / OptLevel / validate_memory_model rejections.
        return "bad_request"
    return None
