"""Seeded fault injection for the serve stack (chaos harness).

PR 3's :class:`repro.runtime.network.FaultPlan` made the *simulated*
network adversarial; this module applies the same playbook to the real
serving substrate — unix sockets, the daemon process, the compile
pool, and the on-disk artifact store.  A :class:`ServeFaultPlan` is a
deterministic function of one seed: identical (plan, workload) pairs
replay the exact same fault schedule, so every chaos failure is a
one-command repro.

Fault classes
=============

* **Transport** — connection refusals before the first byte,
  mid-frame disconnects, truncated frames (a prefix then a hard cut),
  garbled frames (bytes flipped inside the JSON), stalled reads (the
  frame arrives late).  Injected by the daemon's write path; the
  resilient client must map every one to a typed ``transport`` error
  and retry.
* **Daemon crash-at-phase** — the daemon dies abruptly (no drain, no
  socket unlink) at ``pre_cache_put``, ``mid_batch`` or ``mid_drain``,
  exactly what SIGKILL leaves behind.  :class:`ChaosHarness` restarts
  it the way an operator's supervisor would.
* **Pool wedge** — a compile batch sleeps long enough to trip the
  daemon's watchdog, forcing the serial in-process fallback.
* **Store rot** — blobs on disk are bit-flipped or truncated between
  requests; the store's digest verification must quarantine them.

Faults *heal*: after :meth:`ServeFaultPlan.heal_now` (or
``heal_after`` seconds from :meth:`ServeFaultPlan.start_clock`) every
probability reads as zero, which is how the chaos oracle asserts
convergence — once the weather clears, the same workload must reach a
100% cache hit rate.

Spec grammar (the ``repro serve --chaos`` string)::

    spec  := item (',' item)*
    item  := 'refuse=P' | 'disconnect=P' | 'truncate=P' | 'garble=P'
           | 'stall=P:SECONDS'            # delayed response frame
           | 'crash.PHASE=P'              # pre_cache_put | mid_batch
                                          #   | mid_drain
           | 'corrupt_blob=P' | 'truncate_blob=P'
           | 'wedge=P:SECONDS'            # compile-pool stall
           | 'heal_after=SECONDS'

probabilities are floats in [0, 1].  Example:
``refuse=0.05,disconnect=0.1,garble=0.05,crash.mid_batch=0.02``.
"""

from __future__ import annotations

import contextlib
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

# Re-exported here so harness/test code has one import surface; the
# class lives in daemon.py (the daemon must raise it without importing
# this module back).
from repro.serve.daemon import ChaosCrash, ServeConfig, ServerThread
from repro.serve.store import ArtifactCache

#: The daemon phases an injected crash may target.
CRASH_PHASES = ("pre_cache_put", "mid_batch", "mid_drain")


@dataclass
class ServeFaultPlan:
    """A seeded, deterministic description of what the serve stack
    breaks.

    Every probability applies per event (per connection, per response
    frame, per batch, per store sweep); all randomness comes from one
    lock-guarded RNG seeded with ``seed``, shared safely between the
    daemon's event loop and its batch threads.  While healed (see
    module docs) every draw reports "no fault".
    """

    refuse: float = 0.0
    disconnect: float = 0.0
    truncate: float = 0.0
    garble: float = 0.0
    stall: float = 0.0
    stall_seconds: float = 0.05
    #: phase -> crash probability (see :data:`CRASH_PHASES`)
    crash: Dict[str, float] = field(default_factory=dict)
    corrupt_blob: float = 0.0
    truncate_blob: float = 0.0
    wedge: float = 0.0
    wedge_seconds: float = 0.0
    #: seconds after :meth:`start_clock` at which faults stop firing
    #: (0 = only :meth:`heal_now` heals).
    heal_after: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for phase in self.crash:
            if phase not in CRASH_PHASES:
                raise ValueError(
                    f"unknown crash phase {phase!r}; expected one of "
                    f"{', '.join(CRASH_PHASES)}"
                )
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        self._healed = False
        self._clock_start: Optional[float] = None

    # -- healing -----------------------------------------------------------

    def start_clock(self) -> None:
        """Arms ``heal_after`` (no-op when it is 0)."""
        self._clock_start = time.monotonic()

    def heal_now(self) -> None:
        """All faults off, permanently, from this call on."""
        self._healed = True

    @property
    def healed(self) -> bool:
        if self._healed:
            return True
        if self.heal_after > 0 and self._clock_start is not None:
            if time.monotonic() - self._clock_start >= self.heal_after:
                self._healed = True
        return self._healed

    def _roll(self, probability: float) -> bool:
        if probability <= 0.0 or self.healed:
            return False
        with self._lock:
            return self._rng.random() < probability

    # -- daemon-side queries -----------------------------------------------

    def refuse_connection(self) -> bool:
        return self._roll(self.refuse)

    def response_action(self, frame_bytes: int) -> Tuple[str, Any]:
        """What to do with one response frame.

        Returns ``(action, arg)`` where action is one of ``deliver``,
        ``stall`` (arg = seconds), ``disconnect``, ``truncate`` (arg =
        bytes of prefix to deliver) or ``garble``.  At most one fault
        fires per frame, checked in that order.
        """
        if self._roll(self.stall):
            return "stall", self.stall_seconds
        if self._roll(self.disconnect):
            return "disconnect", 0
        if self._roll(self.truncate):
            with self._lock:
                cut = self._rng.randrange(1, max(2, frame_bytes))
            return "truncate", cut
        if self._roll(self.garble):
            return "garble", 0
        return "deliver", 0

    def garble_frame(self, data: bytes) -> bytes:
        """Flips a few bytes inside the frame, newline preserved, so
        the client reads a complete but undecodable line."""
        if len(data) <= 1:
            return data
        body = bytearray(data[:-1])
        with self._lock:
            flips = self._rng.randrange(1, 4)
            for _ in range(flips):
                index = self._rng.randrange(len(body))
                body[index] ^= 0xFF
        return bytes(body) + data[-1:]

    def crash_at(self, phase: str) -> bool:
        return self._roll(self.crash.get(phase, 0.0))

    def pool_wedge_seconds(self) -> float:
        return self.wedge_seconds if self._roll(self.wedge) else 0.0

    # -- store-side queries (driven by the harness) ------------------------

    def blob_fault(self) -> Optional[str]:
        """``"corrupt"``, ``"truncate"`` or None, for one stored blob."""
        if self._roll(self.corrupt_blob):
            return "corrupt"
        if self._roll(self.truncate_blob):
            return "truncate"
        return None

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "ServeFaultPlan":
        """Parses the ``--chaos`` grammar documented in the module."""
        kwargs: Dict[str, Any] = {"seed": seed}
        crash: Dict[str, float] = {}
        for raw in spec.split(","):
            item = raw.strip()
            if not item:
                continue
            try:
                key, value = item.split("=", 1)
            except ValueError:
                raise ValueError(
                    f"bad chaos item {item!r} (expected key=value)"
                ) from None
            key, value = key.strip(), value.strip()
            try:
                if key in ("refuse", "disconnect", "truncate", "garble",
                           "corrupt_blob", "truncate_blob"):
                    kwargs[key] = _prob(value)
                elif key == "stall":
                    prob, _, seconds = value.partition(":")
                    kwargs["stall"] = _prob(prob)
                    if seconds:
                        kwargs["stall_seconds"] = float(seconds)
                elif key == "wedge":
                    prob, _, seconds = value.partition(":")
                    kwargs["wedge"] = _prob(prob)
                    if seconds:
                        kwargs["wedge_seconds"] = float(seconds)
                elif key.startswith("crash."):
                    crash[key[len("crash."):]] = _prob(value)
                elif key == "heal_after":
                    kwargs["heal_after"] = float(value)
                else:
                    raise ValueError(f"unknown chaos key {key!r}")
            except ValueError as exc:
                raise ValueError(
                    f"bad chaos item {item!r}: {exc}"
                ) from None
        if crash:
            kwargs["crash"] = crash
        return cls(**kwargs)

    @classmethod
    def from_seed(cls, seed: int) -> "ServeFaultPlan":
        """A randomized-but-deterministic fault mixture for one seed.

        The chaos oracle runs hundreds of these: each seed picks a
        different subset of fault classes at rates harsh enough to
        fire many times per workload yet bounded enough that a
        retrying client always converges.
        """
        rng = random.Random(0xC4A05 ^ seed)
        kwargs: Dict[str, Any] = {"seed": seed}
        transport = ["refuse", "disconnect", "truncate", "garble"]
        for name in rng.sample(transport, rng.randint(1, 3)):
            kwargs[name] = rng.uniform(0.02, 0.15)
        if rng.random() < 0.5:
            kwargs["stall"] = rng.uniform(0.02, 0.1)
            kwargs["stall_seconds"] = rng.uniform(0.005, 0.03)
        if rng.random() < 0.45:
            phase = rng.choice(list(CRASH_PHASES))
            kwargs["crash"] = {phase: rng.uniform(0.005, 0.03)}
        if rng.random() < 0.5:
            kwargs["corrupt_blob"] = rng.uniform(0.05, 0.25)
        if rng.random() < 0.3:
            kwargs["truncate_blob"] = rng.uniform(0.05, 0.2)
        return cls(**kwargs)

    def describe(self) -> str:
        """A compact summary for logs and repro bundles."""
        parts: List[str] = []
        for name in ("refuse", "disconnect", "truncate", "garble"):
            value = getattr(self, name)
            if value:
                parts.append(f"{name}={value:g}")
        if self.stall:
            parts.append(f"stall={self.stall:g}:{self.stall_seconds:g}")
        for phase in CRASH_PHASES:
            prob = self.crash.get(phase, 0.0)
            if prob:
                parts.append(f"crash.{phase}={prob:g}")
        if self.corrupt_blob:
            parts.append(f"corrupt_blob={self.corrupt_blob:g}")
        if self.truncate_blob:
            parts.append(f"truncate_blob={self.truncate_blob:g}")
        if self.wedge:
            parts.append(f"wedge={self.wedge:g}:{self.wedge_seconds:g}")
        if self.heal_after:
            parts.append(f"heal_after={self.heal_after:g}")
        if not parts:
            parts.append("no-faults")
        return ",".join(parts)


def _prob(text: str) -> float:
    value = float(text)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"probability {value} outside [0, 1]")
    return value


class ChaosHarness:
    """A supervised daemon under chaos: restart on crash, rot the store.

    Plays the operator's supervisor (systemd, a k8s liveness probe):
    :meth:`ensure_alive` notices an injected crash and starts a fresh
    daemon on the same socket and store — exercising stale-socket
    recovery and warm-store reuse on every restart.
    :meth:`maybe_corrupt_store` applies the plan's blob faults to the
    shared on-disk store between workload steps.
    """

    def __init__(
        self,
        config: ServeConfig,
        cache: Optional[ArtifactCache] = None,
    ) -> None:
        assert config.chaos is not None, "harness needs a chaos plan"
        self.config = config
        self.plan: ServeFaultPlan = config.chaos
        self.cache = cache or ArtifactCache(
            root=config.cache_dir,
            max_entries=config.max_entries,
            max_bytes=config.max_bytes,
        )
        self.restarts = 0
        self.blob_faults = 0
        self.thread: Optional[ServerThread] = None

    def start(self) -> "ChaosHarness":
        self.plan.start_clock()
        self.thread = ServerThread(
            self.config, cache=self.cache
        ).start()
        return self

    def alive(self) -> bool:
        return (
            self.thread is not None and self.thread._thread.is_alive()
        )

    def ensure_alive(self) -> bool:
        """Restarts the daemon if an injected crash took it down.

        Returns True when a restart happened.  The dead daemon leaves
        its socket file behind (crashes never unlink), so every
        restart goes through stale-socket recovery.
        """
        if self.alive():
            return False
        if self.thread is not None:
            # Reap the dead thread; release any still-open listener fd
            # exactly like the OS would for a dead process.
            self.thread.kill(timeout=5.0)
        self.restarts += 1
        self.thread = ServerThread(
            self.config, cache=self.cache
        ).start()
        return True

    def maybe_corrupt_store(self) -> int:
        """Applies the plan's blob faults to stored entries.

        Each on-disk blob rolls the plan's ``corrupt_blob`` /
        ``truncate_blob`` dice once; victims are bit-flipped in the
        middle or cut to half length, in place.  Returns the number of
        blobs damaged.  The store's digest check must turn every one
        into a quarantine + transparent recompile, never a served
        corrupt payload.
        """
        damaged = 0
        for path in self._blob_paths():
            fault = self.plan.blob_fault()
            if fault is None:
                continue
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
                if not data:
                    continue
                if fault == "corrupt":
                    middle = len(data) // 2
                    data = (
                        data[:middle]
                        + bytes([data[middle] ^ 0xFF])
                        + data[middle + 1:]
                    )
                else:
                    data = data[: max(1, len(data) // 2)]
                with open(path, "wb") as handle:
                    handle.write(data)
            except OSError:
                continue  # store swept it concurrently
            damaged += 1
        self.blob_faults += damaged
        return damaged

    def _blob_paths(self) -> List[str]:
        paths: List[str] = []
        root = self.cache.root
        try:
            shards = sorted(os.listdir(root))
        except OSError:
            return paths
        for shard in shards:
            if len(shard) != 2:
                continue  # skip quarantine/ and friends
            shard_dir = os.path.join(root, shard)
            try:
                names = sorted(os.listdir(shard_dir))
            except OSError:
                continue
            paths.extend(
                os.path.join(shard_dir, name)
                for name in names
                if name.endswith(".blob")
            )
        return paths

    def stop(self, timeout: float = 30.0) -> None:
        """Heals the plan and drains the daemon gracefully."""
        self.plan.heal_now()
        if self.thread is None:
            return
        if self.alive():
            self.thread.stop(timeout)
            if self.thread._thread.is_alive():
                self.thread.kill(timeout)
        else:
            self.thread.kill(timeout)
        with contextlib.suppress(OSError):
            os.unlink(self.config.socket_path)


__all__ = [
    "CRASH_PHASES",
    "ChaosCrash",
    "ChaosHarness",
    "ServeFaultPlan",
]
