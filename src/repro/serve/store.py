"""Content-addressed, cross-process artifact store.

The store generalizes the original flat ``$REPRO_CACHE_DIR`` compile
cache into the substrate every compile entry point — ``repro serve``,
the compile pool, ``compile_with_cache`` — shares:

* **Content addressing.**  A key is a SHA-256 over a canonical JSON
  rendering of the artifact's *inputs*: the artifact kind (``compile``,
  ``analyze``, ``simulate``), the source text, the pipeline parameters
  (optimization level, analysis level, machine configuration), the
  store schema, ``repro.__version__``, and a fingerprint of the
  installed compiler sources.  Same inputs ⇒ same key, in every
  process, on every machine running the same compiler — which is what
  makes the cache safely shareable between the daemon, pool workers,
  and plain CLI runs.

* **Sharding.**  Entries live under ``root/<first two hex chars>/``
  (256 shards), so no single directory grows unboundedly and shard
  scans stay cheap.

* **LRU eviction.**  A hit bumps the entry's mtime; when
  ``max_entries``/``max_bytes`` budgets are set (``REPRO_CACHE_MAX_ENTRIES``
  / ``REPRO_CACHE_MAX_BYTES``), a put evicts oldest-mtime entries until
  the store is back under budget.  With no budget configured — the
  default — puts never scan the store, so the unbounded case has zero
  eviction overhead.

* **Integrity.**  Every put also records the blob's SHA-256 in a
  ``.blob.sum`` sidecar; every read re-hashes the blob and compares.
  A mismatch — bit rot, a torn write from a crashed process, injected
  corruption — *quarantines* the entry (blob and sidecar moved to
  ``root/quarantine/``) and reports a miss, so a corrupt artifact is
  recompiled transparently and can never be served, and the bad bytes
  are preserved for forensics instead of being re-read forever.
  Entries written before the sidecar existed verify as legacy
  (unpickle failures still quarantine them).

* **Telemetry.**  Hits, misses, puts, evictions, corruption
  detections and quarantines are counted on the store instance *and*
  mirrored to the active :mod:`repro.perf` profiler
  (``artifact_store.hits`` / ``.misses`` / ``.evictions`` / ``.puts``
  / ``.corrupt`` / ``.quarantined``), so ``--profile`` JSON and the
  daemon's ``stats`` op both expose the hit rate.

Writes are atomic (temp file + ``os.replace``) and reads tolerate
concurrent eviction, so many processes can share one root directory
without locks; the worst case is a recomputation, never corruption.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Bump to invalidate every existing entry on key/format changes.
STORE_SCHEMA = 2

_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """A cheap digest of the installed ``repro`` sources.

    Hashes every module's (relative path, mtime, size) so in-place
    edits to the compiler invalidate the cache without a version bump.
    """
    global _fingerprint
    if _fingerprint is not None:
        return _fingerprint
    import repro

    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    for root, dirs, files in sorted(os.walk(package_dir)):
        dirs.sort()
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(root, name)
            stat = os.stat(path)
            rel = os.path.relpath(path, package_dir)
            digest.update(
                f"{rel}:{stat.st_mtime_ns}:{stat.st_size};".encode()
            )
    _fingerprint = digest.hexdigest()
    return _fingerprint


def default_root() -> str:
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-compile")


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        return None


def artifact_key(kind: str, **parts: Any) -> str:
    """The content address for an artifact of ``kind`` with ``parts``.

    Canonical derivation (documented in docs/SERVING.md): a SHA-256
    over ``schema``, ``repro.__version__``, :func:`code_fingerprint`,
    ``kind``, and the canonical JSON (sorted keys, no whitespace) of
    ``parts``.  Every part must be JSON-serializable.
    """
    import repro

    digest = hashlib.sha256()
    digest.update(f"schema={STORE_SCHEMA};".encode())
    digest.update(f"version={repro.__version__};".encode())
    digest.update(f"code={code_fingerprint()};".encode())
    digest.update(f"kind={kind};".encode())
    digest.update(
        json.dumps(parts, sort_keys=True, separators=(",", ":")).encode()
    )
    return digest.hexdigest()


class ArtifactCache:
    """A sharded, LRU-evicting, content-addressed blob store on disk."""

    def __init__(
        self,
        root: Optional[str] = None,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.root = root or default_root()
        self.max_entries = (
            max_entries if max_entries is not None
            else _env_int("REPRO_CACHE_MAX_ENTRIES")
        )
        self.max_bytes = (
            max_bytes if max_bytes is not None
            else _env_int("REPRO_CACHE_MAX_BYTES")
        )
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.corrupt = 0
        self.quarantined = 0
        self._lock = threading.Lock()

    # -- key & layout ------------------------------------------------------

    def key(self, kind: str, **parts: Any) -> str:
        return artifact_key(kind, **parts)

    def path_for(self, key: str) -> str:
        """``root/<shard>/<rest>.blob`` — shard = first two hex chars."""
        return os.path.join(self.root, key[:2], f"{key[2:]}.blob")

    def digest_path_for(self, key: str) -> str:
        """The ``.blob.sum`` sidecar holding the blob's SHA-256 hex."""
        return self.path_for(key) + ".sum"

    def quarantine_dir(self) -> str:
        return os.path.join(self.root, "quarantine")

    # -- raw bytes ---------------------------------------------------------

    def get_bytes(self, key: str) -> Optional[bytes]:
        """The verified blob for ``key``, or None (miss).

        A hit refreshes LRU order.  When a digest sidecar exists, the
        blob is re-hashed and compared; a mismatch quarantines the
        entry and reports a miss.  The comparison is retried once to
        tolerate racing an in-progress overwrite (blob and sidecar are
        replaced one after the other).
        """
        path = self.path_for(key)
        for _attempt in range(2):
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
            except OSError:
                self._count("misses")
                return None
            expected = self._read_digest(key)
            if expected is None or (
                hashlib.sha256(data).hexdigest() == expected
            ):
                break
        else:
            self._count("corrupt")
            self.quarantine(key)
            self._count("misses")
            return None
        try:
            os.utime(path, None)  # LRU bump; best-effort
        except OSError:
            pass
        self._count("hits")
        return data

    def _read_digest(self, key: str) -> Optional[str]:
        try:
            with open(self.digest_path_for(key), "r",
                      encoding="ascii") as handle:
                return handle.read().strip() or None
        except (OSError, UnicodeDecodeError):
            return None  # legacy entry (pre-integrity) or unreadable

    def put_bytes(self, key: str, data: bytes) -> None:
        """Atomically stores ``data`` plus its digest sidecar; evicts
        if a budget is exceeded."""
        shard = os.path.dirname(self.path_for(key))
        try:
            os.makedirs(shard, exist_ok=True)
            self._write_atomic(
                shard, self.digest_path_for(key),
                hashlib.sha256(data).hexdigest().encode("ascii"),
            )
            self._write_atomic(shard, self.path_for(key), data)
        except OSError:
            return  # read-only or full filesystem: caching is best-effort
        self._count("puts")
        if self.max_entries is not None or self.max_bytes is not None:
            self.evict_to_budget()

    @staticmethod
    def _write_atomic(shard: str, path: str, data: bytes) -> None:
        fd, tmp_path = tempfile.mkstemp(dir=shard, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    # -- quarantine --------------------------------------------------------

    def quarantine(self, key: str) -> bool:
        """Moves a corrupt entry to ``root/quarantine/`` for forensics.

        Returns True if a blob was actually moved.  The entry stops
        being served immediately; the next request recompiles and
        overwrites it.  Races (another process quarantining or
        evicting the same entry) are benign: a missing file is fine.
        """
        moved = False
        quarantine = self.quarantine_dir()
        try:
            os.makedirs(quarantine, exist_ok=True)
            os.replace(
                self.path_for(key),
                os.path.join(quarantine, f"{key}.blob"),
            )
            moved = True
        except OSError:
            pass
        try:
            os.replace(
                self.digest_path_for(key),
                os.path.join(quarantine, f"{key}.blob.sum"),
            )
        except OSError:
            pass
        if moved:
            self._count("quarantined")
        return moved

    def quarantined_entries(self) -> int:
        """How many blobs sit in the quarantine directory."""
        try:
            names = os.listdir(self.quarantine_dir())
        except OSError:
            return 0
        return sum(1 for name in names if name.endswith(".blob"))

    # -- pickled objects ---------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """Unpickles the blob for ``key``; a corrupt blob is
        quarantined and reported as a miss."""
        data = self.get_bytes(key)
        if data is None:
            return None
        try:
            return pickle.loads(data)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            # The digest matched (or was legacy) but the payload does
            # not unpickle: quarantine it rather than re-reading the
            # bad bytes on every future request.
            self._count("corrupt")
            self.quarantine(key)
            return None

    def put(self, key: str, value: Any) -> None:
        self.put_bytes(key, pickle.dumps(value))

    # -- enumeration & eviction --------------------------------------------

    def iter_entries(self) -> Iterator[Tuple[str, float, int]]:
        """Yields (path, mtime, size) for every stored blob."""
        try:
            shards = sorted(os.listdir(self.root))
        except OSError:
            return
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            if len(shard) != 2 or not os.path.isdir(shard_dir):
                continue
            try:
                names = os.listdir(shard_dir)
            except OSError:
                continue
            for name in sorted(names):
                if not name.endswith(".blob"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue  # concurrently evicted
                yield path, stat.st_mtime, stat.st_size

    def evict_to_budget(self) -> int:
        """Removes oldest-mtime entries until within budget.

        Returns the number of entries evicted.  Safe under concurrent
        eviction from other processes: a missing file is skipped.
        """
        entries: List[Tuple[str, float, int]] = list(self.iter_entries())
        count = len(entries)
        total = sum(size for _path, _mtime, size in entries)
        over_entries = (
            self.max_entries is not None and count > self.max_entries
        )
        over_bytes = self.max_bytes is not None and total > self.max_bytes
        if not over_entries and not over_bytes:
            return 0
        evicted = 0
        entries.sort(key=lambda entry: (entry[1], entry[0]))
        for path, _mtime, size in entries:
            if (
                (self.max_entries is None or count <= self.max_entries)
                and (self.max_bytes is None or total <= self.max_bytes)
            ):
                break
            try:
                os.unlink(path)
            except OSError:
                pass  # another process won the race
            try:
                os.unlink(path + ".sum")
            except OSError:
                pass  # legacy entry without a digest sidecar
            count -= 1
            total -= size
            evicted += 1
        if evicted:
            self._count("evictions", evicted)
        return evicted

    def clear(self) -> None:
        for path, _mtime, _size in list(self.iter_entries()):
            for victim in (path, path + ".sum"):
                try:
                    os.unlink(victim)
                except OSError:
                    pass

    # -- telemetry ---------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)
        from repro.perf import profiler

        profiler.count(f"artifact_store.{name}", amount)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        """A JSON-able snapshot: counters plus an on-disk scan."""
        entries = list(self.iter_entries())
        return {
            "root": self.root,
            "entries": len(entries),
            "bytes": sum(size for _p, _m, size in entries),
            "shards": len({os.path.dirname(p) for p, _m, _s in entries}),
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "quarantined": self.quarantined,
            "quarantine_entries": self.quarantined_entries(),
            "hit_rate": self.hit_rate(),
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
        }


# -- the process-default store ---------------------------------------------

_default: Optional[ArtifactCache] = None


def default_cache() -> ArtifactCache:
    """The process-wide store (created from the environment on demand)."""
    global _default
    if _default is None:
        _default = ArtifactCache()
    return _default


def set_default_cache(
    cache: Optional[ArtifactCache],
) -> Optional[ArtifactCache]:
    """Installs ``cache`` as the process default; returns the previous.

    The daemon uses this to point every in-process compile at its
    configured store; tests use it to isolate cache roots.  Passing
    None resets to environment-derived defaults.
    """
    global _default
    previous = _default
    _default = cache
    return previous
