"""Top-level public API: compile and analyze MiniSplit source programs.

Typical use::

    from repro import compile_source, OptLevel
    from repro.runtime import CM5

    program = compile_source(source_text, OptLevel.O3)
    result = program.run(num_procs=8, machine=CM5)
    print(result.cycles, result.snapshot()["A"])

Both entry points route through one
:class:`~repro.pipeline.CompilationSession`, so compiling and analyzing
obtain the inlined module from the same session artifact — callers that
need both (or several optimization levels) should open a session with
:func:`open_session` and reuse it::

    session = open_session(source_text)
    analysis = session.analyze(AnalysisLevel.SYNC)   # frontend runs once
    program = session.compile(OptLevel.O3)           # analysis reused
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.delays import AnalysisLevel, AnalysisResult
from repro.codegen.pipeline import CompiledProgram, OptLevel
from repro.ir.cfg import Module
from repro.ir.lowering import lower_program
from repro.lang import parse_and_check
from repro.pipeline.session import CompilationSession, PipelineOptions


def frontend(source: str, filename: str = "<input>") -> Module:
    """Parses, checks and lowers MiniSplit source to an IR module."""
    return lower_program(parse_and_check(source, filename))


def open_session(
    source: str,
    filename: str = "<input>",
    options: Optional[PipelineOptions] = None,
) -> CompilationSession:
    """A shared compilation session for ``source``.

    Frontend, inlining, and delay-set analyses run at most once per
    session and are reused by every ``compile``/``analyze`` call on it.
    """
    return CompilationSession(
        source=source, filename=filename, options=options
    )


def compile_source(
    source: str,
    opt_level: OptLevel = OptLevel.O3,
    filename: str = "<input>",
    options: Optional[PipelineOptions] = None,
) -> CompiledProgram:
    """Compiles MiniSplit source at the given optimization level."""
    session = open_session(source, filename, options)
    return session.compile(opt_level, in_place=True)


def analyze_source(
    source: str,
    level: AnalysisLevel = AnalysisLevel.SYNC,
    filename: str = "<input>",
) -> AnalysisResult:
    """Runs delay-set analysis on a source program's inlined main."""
    return open_session(source, filename).analyze(level)
