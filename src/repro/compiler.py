"""Top-level public API: compile and analyze MiniSplit source programs.

Typical use::

    from repro import compile_source, OptLevel
    from repro.runtime import CM5

    program = compile_source(source_text, OptLevel.O3)
    result = program.run(num_procs=8, machine=CM5)
    print(result.cycles, result.snapshot()["A"])
"""

from __future__ import annotations


from repro.analysis.delays import (
    AnalysisLevel,
    AnalysisResult,
    analyze_function,
)
from repro.codegen.pipeline import CompiledProgram, OptLevel, compile_module
from repro.ir.cfg import Module
from repro.ir.inline import inline_all
from repro.ir.lowering import lower_program
from repro.lang import parse_and_check


def frontend(source: str, filename: str = "<input>") -> Module:
    """Parses, checks and lowers MiniSplit source to an IR module."""
    return lower_program(parse_and_check(source, filename))


def compile_source(
    source: str,
    opt_level: OptLevel = OptLevel.O3,
    filename: str = "<input>",
) -> CompiledProgram:
    """Compiles MiniSplit source at the given optimization level."""
    module = frontend(source, filename)
    return compile_module(module, opt_level, clone=False)


def analyze_source(
    source: str,
    level: AnalysisLevel = AnalysisLevel.SYNC,
    filename: str = "<input>",
) -> AnalysisResult:
    """Runs delay-set analysis on a source program's inlined main."""
    module = inline_all(frontend(source, filename))
    return analyze_function(module.main, level)
