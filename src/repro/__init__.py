"""repro — reproduction of Krishnamurthy & Yelick, PLDI 1995.

*Optimizing Parallel Programs with Explicit Synchronization*: delay-set
(cycle-detection) analysis for explicitly parallel SPMD programs,
refined with post-wait / barrier / lock synchronization information, and
the distributed-memory code optimizations it enables — message
pipelining, one-way communication, and communication elimination —
evaluated on a simulated CM-5-class machine.

Public entry points:

* :func:`repro.compile_source` — compile a MiniSplit program at an
  optimization level (``OptLevel.O0`` ... ``O4``).
* :func:`repro.analyze_source` — run the delay-set analysis alone.
* :mod:`repro.runtime` — the machine simulator (Table 1 presets).
* :mod:`repro.apps` — the paper's five application kernels.
"""

from repro.analysis.delays import AnalysisLevel, AnalysisResult
from repro.codegen.pipeline import CompiledProgram, OptLevel
from repro.compiler import analyze_source, compile_source, frontend

__version__ = "1.0.0"

__all__ = [
    "compile_source",
    "analyze_source",
    "frontend",
    "OptLevel",
    "CompiledProgram",
    "AnalysisLevel",
    "AnalysisResult",
    "__version__",
]
