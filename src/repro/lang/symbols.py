"""Symbol tables for the MiniSplit checker.

A :class:`Scope` is a chained dictionary from names to :class:`Symbol`
entries.  Shared declarations live in the global scope; each function
body opens nested scopes for blocks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import SourceLocation, TypeError_
from repro.lang.types import Type


class SymbolKind(enum.Enum):
    SHARED = "shared"
    LOCAL = "local"
    PARAM = "param"
    FUNCTION = "function"


@dataclass
class Symbol:
    name: str
    kind: SymbolKind
    type: Type
    location: SourceLocation


class Scope:
    """A lexical scope; lookups chain to the parent."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self._symbols: Dict[str, Symbol] = {}

    def declare(self, symbol: Symbol) -> None:
        if symbol.name in self._symbols:
            previous = self._symbols[symbol.name]
            raise TypeError_(
                f"redeclaration of {symbol.name!r} "
                f"(previously declared at {previous.location})",
                symbol.location,
            )
        self._symbols[symbol.name] = symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            symbol = scope._symbols.get(name)
            if symbol is not None:
                return symbol
            scope = scope.parent
        return None

    def lookup_local(self, name: str) -> Optional[Symbol]:
        """Lookup restricted to this scope (no chaining)."""
        return self._symbols.get(name)
