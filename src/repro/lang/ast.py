"""Abstract syntax tree for MiniSplit.

Nodes are plain dataclasses.  Expression nodes carry a ``type`` slot
filled in by the checker (:mod:`repro.lang.checker`).  Every node carries
its source location for diagnostics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import SourceLocation
from repro.lang.types import Distribution, Type


class Node:
    """Base class for all AST nodes (purely for isinstance checks)."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    location: SourceLocation
    type: Optional[Type] = field(default=None, init=False, compare=False)


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class FloatLiteral(Expr):
    value: float = 0.0


@dataclass
class MyProc(Expr):
    """The builtin ``MYPROC`` — the executing processor's id."""


@dataclass
class NumProcs(Expr):
    """The builtin ``PROCS`` — the number of processors."""


@dataclass
class VarRef(Expr):
    """A reference to a scalar variable (local or shared)."""

    name: str = ""


@dataclass
class IndexExpr(Expr):
    """``base[i0][i1]...`` — indexing into a local or shared array."""

    base: Optional["VarRef"] = None
    indices: List[Expr] = field(default_factory=list)


class BinaryOp(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "&&"
    OR = "||"


class UnaryOp(enum.Enum):
    NEG = "-"
    NOT = "!"


@dataclass
class Binary(Expr):
    op: BinaryOp = BinaryOp.ADD
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Unary(Expr):
    op: UnaryOp = UnaryOp.NEG
    operand: Optional[Expr] = None


@dataclass
class Call(Expr):
    """A call to a user function or intrinsic (``min``/``max``/...)."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    location: SourceLocation


@dataclass
class VarDecl(Stmt):
    """A local variable declaration, optionally initialized."""

    name: str = ""
    var_type: Optional[Type] = None
    init: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    """``lvalue = expr;`` — the lvalue is a VarRef or IndexExpr."""

    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class If(Stmt):
    condition: Optional[Expr] = None
    then_body: Optional["Block"] = None
    else_body: Optional["Block"] = None


@dataclass
class While(Stmt):
    condition: Optional[Expr] = None
    body: Optional["Block"] = None


@dataclass
class For(Stmt):
    """C-style for; init/step are restricted to assignments."""

    init: Optional[Stmt] = None
    condition: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: Optional["Block"] = None


@dataclass
class Barrier(Stmt):
    """``barrier();`` — global barrier synchronization."""


@dataclass
class Post(Stmt):
    """``post(flag);`` — signal a post/wait event variable."""

    flag: Optional[Expr] = None


@dataclass
class Wait(Stmt):
    """``wait(flag);`` — block until the matching post."""

    flag: Optional[Expr] = None


@dataclass
class LockStmt(Stmt):
    """``lock(l);`` — acquire a mutual exclusion lock."""

    lock: Optional[Expr] = None


@dataclass
class UnlockStmt(Stmt):
    """``unlock(l);`` — release a mutual exclusion lock."""

    lock: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for effect (a void call)."""

    expr: Optional[Expr] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class SharedDecl(Node):
    """A top-level ``shared`` declaration (scalar, flag, lock or array)."""

    location: SourceLocation
    name: str = ""
    var_type: Optional[Type] = None
    distribution: Distribution = Distribution.BLOCK


@dataclass
class Param(Node):
    location: SourceLocation
    name: str = ""
    param_type: Optional[Type] = None


@dataclass
class FuncDecl(Node):
    location: SourceLocation
    name: str = ""
    return_type: Optional[Type] = None
    params: List[Param] = field(default_factory=list)
    body: Optional[Block] = None


@dataclass
class Program(Node):
    """A whole MiniSplit translation unit.

    SPMD semantics: every processor executes ``main()``.
    """

    shared_decls: List[SharedDecl] = field(default_factory=list)
    functions: List[FuncDecl] = field(default_factory=list)

    def function(self, name: str) -> FuncDecl:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(name)

    def shared(self, name: str) -> SharedDecl:
        for decl in self.shared_decls:
            if decl.name == name:
                return decl
        raise KeyError(name)
