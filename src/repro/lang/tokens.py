"""Token definitions for the MiniSplit language.

MiniSplit is the source language of the paper's section 2: an explicitly
parallel SPMD language in the style of (a subset of) Split-C.  All shared
memory accesses in the *source* are blocking; split-phase operations only
appear in the compiler's output.  The token set is deliberately small — a
C-like expression language plus the parallel declarations and the four
synchronization statement forms the paper analyzes (``barrier``, ``post``/
``wait``, ``lock``/``unlock``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import SourceLocation


class TokenKind(enum.Enum):
    """Every distinct lexical category recognized by the lexer."""

    # Literals and identifiers
    INT_LITERAL = "int_literal"
    FLOAT_LITERAL = "float_literal"
    IDENT = "ident"

    # Keywords
    KW_SHARED = "shared"
    KW_INT = "int"
    KW_DOUBLE = "double"
    KW_VOID = "void"
    KW_FLAG = "flag_t"
    KW_LOCK = "lock_t"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_FOR = "for"
    KW_RETURN = "return"
    KW_BARRIER = "barrier"
    KW_POST = "post"
    KW_WAIT = "wait"
    KW_LOCK_STMT = "lock"
    KW_UNLOCK = "unlock"
    KW_MYPROC = "MYPROC"
    KW_PROCS = "PROCS"
    KW_DIST = "dist"
    KW_BLOCK = "block"
    KW_CYCLIC = "cyclic"

    # Punctuation / operators
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMI = ";"
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "&&"
    OR = "||"
    NOT = "!"

    EOF = "eof"


#: Map from keyword spelling to its token kind.  ``MYPROC`` and ``PROCS``
#: are lexed as keywords because they are builtin nullary expressions with
#: special meaning to the analyses (processor identity drives the conflict
#: analysis of distributed array indices).
KEYWORDS = {
    "shared": TokenKind.KW_SHARED,
    "int": TokenKind.KW_INT,
    "double": TokenKind.KW_DOUBLE,
    "void": TokenKind.KW_VOID,
    "flag_t": TokenKind.KW_FLAG,
    "lock_t": TokenKind.KW_LOCK,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "for": TokenKind.KW_FOR,
    "return": TokenKind.KW_RETURN,
    "barrier": TokenKind.KW_BARRIER,
    "post": TokenKind.KW_POST,
    "wait": TokenKind.KW_WAIT,
    "lock": TokenKind.KW_LOCK_STMT,
    "unlock": TokenKind.KW_UNLOCK,
    "MYPROC": TokenKind.KW_MYPROC,
    "PROCS": TokenKind.KW_PROCS,
    "dist": TokenKind.KW_DIST,
    "block": TokenKind.KW_BLOCK,
    "cyclic": TokenKind.KW_CYCLIC,
}


@dataclass(frozen=True)
class Token:
    """A single lexeme with its source location.

    ``value`` carries the decoded payload for literals (``int`` or
    ``float``) and the spelling for identifiers; it is ``None`` for
    punctuation and keywords.
    """

    kind: TokenKind
    location: SourceLocation
    value: Optional[Union[int, float, str]] = None

    @property
    def spelling(self) -> str:
        """Human-readable spelling, used in diagnostics."""
        if self.value is not None:
            return str(self.value)
        return self.kind.value

    def __str__(self) -> str:
        return f"{self.kind.name}({self.spelling})@{self.location}"
