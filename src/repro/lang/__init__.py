"""MiniSplit language frontend: lexer, parser, AST, types, checker.

MiniSplit is the Split-C-subset source language described in section 2
of the paper: an SPMD language with a global address space exposed only
through shared scalars and distributed arrays, blocking shared accesses,
and explicit synchronization (``barrier``, ``post``/``wait``,
``lock``/``unlock``).
"""

from repro.lang import ast
from repro.lang.checker import CheckedProgram, check
from repro.lang.lexer import Lexer, tokenize
from repro.lang.parser import Parser, parse
from repro.lang.types import (
    DOUBLE,
    FLAG,
    INT,
    LOCK,
    VOID,
    Distribution,
    ScalarKind,
    Type,
)


def parse_and_check(source: str, filename: str = "<input>") -> CheckedProgram:
    """Parses and type-checks MiniSplit source text in one step."""
    return check(parse(source, filename))


__all__ = [
    "ast",
    "parse",
    "check",
    "parse_and_check",
    "tokenize",
    "Lexer",
    "Parser",
    "CheckedProgram",
    "Type",
    "ScalarKind",
    "Distribution",
    "INT",
    "DOUBLE",
    "VOID",
    "FLAG",
    "LOCK",
]
