"""AST pretty-printer: renders a program back to MiniSplit source.

Used by tooling and by the parser roundtrip property test
(``parse(print(parse(s)))`` must equal ``parse(s)`` structurally).
"""

from __future__ import annotations

from typing import List

from repro.lang import ast
from repro.lang.types import Distribution, Type

#: Binary operator precedence, mirroring the parser's table.
_PRECEDENCE = {
    ast.BinaryOp.OR: 1,
    ast.BinaryOp.AND: 2,
    ast.BinaryOp.EQ: 3,
    ast.BinaryOp.NE: 3,
    ast.BinaryOp.LT: 4,
    ast.BinaryOp.LE: 4,
    ast.BinaryOp.GT: 4,
    ast.BinaryOp.GE: 4,
    ast.BinaryOp.ADD: 5,
    ast.BinaryOp.SUB: 5,
    ast.BinaryOp.MUL: 6,
    ast.BinaryOp.DIV: 6,
    ast.BinaryOp.MOD: 6,
}


def _render_type(t: Type) -> str:
    return t.kind.value


def _dims(t: Type) -> str:
    return "".join(f"[{d}]" for d in t.dims)


def print_expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    """Renders an expression, parenthesizing only where needed."""
    if isinstance(expr, ast.IntLiteral):
        return str(expr.value)
    if isinstance(expr, ast.FloatLiteral):
        text = repr(expr.value)
        return text if ("." in text or "e" in text) else text + ".0"
    if isinstance(expr, ast.MyProc):
        return "MYPROC"
    if isinstance(expr, ast.NumProcs):
        return "PROCS"
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.IndexExpr):
        indices = "".join(f"[{print_expr(i)}]" for i in expr.indices)
        return f"{expr.base.name}{indices}"
    if isinstance(expr, ast.Unary):
        operand = print_expr(expr.operand, 10)
        return f"{expr.op.value}{operand}"
    if isinstance(expr, ast.Binary):
        prec = _PRECEDENCE[expr.op]
        left = print_expr(expr.left, prec)
        right = print_expr(expr.right, prec + 1)  # left-associative
        text = f"{left} {expr.op.value} {right}"
        if prec < parent_prec:
            return f"({text})"
        return text
    if isinstance(expr, ast.Call):
        args = ", ".join(print_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    raise TypeError(f"cannot print {type(expr).__name__}")


class _Printer:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 0

    def emit(self, text: str) -> None:
        self.lines.append("  " * self.depth + text)

    def statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.emit("{")
            self.depth += 1
            for inner in stmt.statements:
                self.statement(inner)
            self.depth -= 1
            self.emit("}")
        elif isinstance(stmt, ast.VarDecl):
            text = (
                f"{_render_type(stmt.var_type)} {stmt.name}"
                f"{_dims(stmt.var_type)}"
            )
            if stmt.init is not None:
                text += f" = {print_expr(stmt.init)}"
            self.emit(text + ";")
        elif isinstance(stmt, ast.Assign):
            self.emit(
                f"{print_expr(stmt.target)} = {print_expr(stmt.value)};"
            )
        elif isinstance(stmt, ast.If):
            self.emit(f"if ({print_expr(stmt.condition)})")
            self.statement(stmt.then_body)
            if stmt.else_body is not None:
                self.emit("else")
                self.statement(stmt.else_body)
        elif isinstance(stmt, ast.While):
            self.emit(f"while ({print_expr(stmt.condition)})")
            self.statement(stmt.body)
        elif isinstance(stmt, ast.For):
            init = self._inline_statement(stmt.init)
            cond = (
                print_expr(stmt.condition)
                if stmt.condition is not None
                else ""
            )
            step = self._inline_statement(stmt.step, semi=False)
            self.emit(f"for ({init} {cond}; {step})")
            self.statement(stmt.body)
        elif isinstance(stmt, ast.Barrier):
            self.emit("barrier();")
        elif isinstance(stmt, ast.Post):
            self.emit(f"post({print_expr(stmt.flag)});")
        elif isinstance(stmt, ast.Wait):
            self.emit(f"wait({print_expr(stmt.flag)});")
        elif isinstance(stmt, ast.LockStmt):
            self.emit(f"lock({print_expr(stmt.lock)});")
        elif isinstance(stmt, ast.UnlockStmt):
            self.emit(f"unlock({print_expr(stmt.lock)});")
        elif isinstance(stmt, ast.ExprStmt):
            self.emit(f"{print_expr(stmt.expr)};")
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.emit(f"return {print_expr(stmt.value)};")
            else:
                self.emit("return;")
        else:
            raise TypeError(f"cannot print {type(stmt).__name__}")

    def _inline_statement(self, stmt, semi: bool = True) -> str:
        if stmt is None:
            return ";" if semi else ""
        if isinstance(stmt, ast.VarDecl):
            text = f"{_render_type(stmt.var_type)} {stmt.name}"
            if stmt.init is not None:
                text += f" = {print_expr(stmt.init)}"
        elif isinstance(stmt, ast.Assign):
            text = f"{print_expr(stmt.target)} = {print_expr(stmt.value)}"
        else:
            raise TypeError(
                f"cannot inline {type(stmt).__name__} in a for header"
            )
        return text + (";" if semi else "")


def print_program(program: ast.Program) -> str:
    """Renders a whole program as (re-parseable) MiniSplit source."""
    printer = _Printer()
    for decl in program.shared_decls:
        dist = ""
        if decl.var_type.is_array and (
            decl.distribution is Distribution.CYCLIC
        ):
            dist = " dist(cyclic)"
        printer.emit(
            f"shared {_render_type(decl.var_type)} {decl.name}"
            f"{_dims(decl.var_type)}{dist};"
        )
    for func in program.functions:
        params = ", ".join(
            f"{_render_type(p.param_type)} {p.name}" for p in func.params
        )
        printer.emit(f"{_render_type(func.return_type)} "
                     f"{func.name}({params})")
        printer.statement(func.body)
    return "\n".join(printer.lines) + "\n"
