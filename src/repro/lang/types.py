"""The MiniSplit type system.

The source language restrictions follow section 2 of the paper:

* The global address space is exposed *only* through ``shared`` scalars
  and distributed arrays — there are no global pointers, so the analyses
  need no alias analysis for shared data.
* Local data (scalars and arrays) is invisible to the parallel analyses:
  local accesses can never participate in a cross-processor conflict.
* ``flag_t`` objects are the paper's post/wait event variables; the
  analysis assumes each flag is posted at most once per phase.
* ``lock_t`` objects are mutual-exclusion locks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple


class ScalarKind(enum.Enum):
    """Primitive element kinds."""

    INT = "int"
    DOUBLE = "double"
    VOID = "void"
    FLAG = "flag_t"
    LOCK = "lock_t"


class Distribution(enum.Enum):
    """How a shared array is laid out across processors.

    ``BLOCK`` gives each processor one contiguous chunk of the leading
    dimension; ``CYCLIC`` deals leading-dimension elements round-robin.
    Shared scalars always live on processor 0.
    """

    BLOCK = "block"
    CYCLIC = "cyclic"


@dataclass(frozen=True)
class Type:
    """A MiniSplit type: a scalar kind plus optional array dimensions.

    ``dims`` is a tuple of compile-time-constant extents; empty for
    scalars.  ``shared`` marks data living in the global address space.
    """

    kind: ScalarKind
    dims: Tuple[int, ...] = field(default=())
    shared: bool = False
    distribution: Distribution = Distribution.BLOCK

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def is_numeric(self) -> bool:
        return self.kind in (ScalarKind.INT, ScalarKind.DOUBLE) and not self.dims

    @property
    def is_sync_object(self) -> bool:
        return self.kind in (ScalarKind.FLAG, ScalarKind.LOCK)

    @property
    def element_count(self) -> int:
        count = 1
        for extent in self.dims:
            count *= extent
        return count

    def element_type(self) -> "Type":
        """The type obtained by fully indexing this array."""
        return Type(self.kind, (), self.shared, self.distribution)

    def __str__(self) -> str:
        text = self.kind.value
        if self.shared:
            text = "shared " + text
        for extent in self.dims:
            text += f"[{extent}]"
        return text


INT = Type(ScalarKind.INT)
DOUBLE = Type(ScalarKind.DOUBLE)
VOID = Type(ScalarKind.VOID)
FLAG = Type(ScalarKind.FLAG)
LOCK = Type(ScalarKind.LOCK)


def arithmetic_result(left: Type, right: Type) -> Type:
    """Usual arithmetic conversion: double wins over int."""
    if ScalarKind.DOUBLE in (left.kind, right.kind):
        return DOUBLE
    return INT


def assignable(target: Type, value: Type) -> bool:
    """True if a value of type ``value`` may be assigned to ``target``.

    MiniSplit permits implicit int<->double conversion (like C) but no
    array or sync-object assignment.
    """
    if target.is_array or value.is_array:
        return False
    if target.kind in (ScalarKind.FLAG, ScalarKind.LOCK, ScalarKind.VOID):
        return False
    return value.kind in (ScalarKind.INT, ScalarKind.DOUBLE)
