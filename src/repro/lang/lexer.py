"""Hand-written lexer for MiniSplit.

The lexer is a straightforward single-pass scanner.  It supports C-style
``//`` line comments and ``/* ... */`` block comments, decimal integer and
floating-point literals, and the operator set listed in
:mod:`repro.lang.tokens`.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import LexError, SourceLocation
from repro.lang.tokens import KEYWORDS, Token, TokenKind


def _is_digit(char: str) -> bool:
    """ASCII digits only — ``str.isdigit`` accepts Unicode digits like
    '²' that ``int()`` rejects."""
    return "0" <= char <= "9"


def _is_ident_start(char: str) -> bool:
    return ("a" <= char <= "z") or ("A" <= char <= "Z") or char == "_"


def _is_ident_char(char: str) -> bool:
    return _is_ident_start(char) or _is_digit(char)

_TWO_CHAR_OPERATORS = {
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
}

_ONE_CHAR_OPERATORS = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "!": TokenKind.NOT,
}


class Lexer:
    """Scans MiniSplit source text into a token stream."""

    def __init__(self, source: str, filename: str = "<input>"):
        self._source = source
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._column = 1

    def _location(self) -> SourceLocation:
        return SourceLocation(self._line, self._column, self._filename)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._source):
            return ""
        return self._source[index]

    def _advance(self) -> str:
        char = self._source[self._pos]
        self._pos += 1
        if char == "\n":
            self._line += 1
            self._column = 1
        else:
            self._column += 1
        return char

    def _skip_trivia(self) -> None:
        """Skips whitespace and both comment styles."""
        while self._pos < len(self._source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance()
                self._advance()
                while True:
                    if self._pos >= len(self._source):
                        raise LexError("unterminated block comment", start)
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance()
                        self._advance()
                        break
                    self._advance()
            else:
                return

    def _lex_number(self) -> Token:
        start = self._location()
        digits: List[str] = []
        while _is_digit(self._peek()):
            digits.append(self._advance())
        is_float = False
        if self._peek() == "." and _is_digit(self._peek(1)):
            is_float = True
            digits.append(self._advance())
            while _is_digit(self._peek()):
                digits.append(self._advance())
        if self._peek() in "eE" and (
            _is_digit(self._peek(1))
            or (self._peek(1) in "+-" and _is_digit(self._peek(2)))
        ):
            is_float = True
            digits.append(self._advance())
            if self._peek() in "+-":
                digits.append(self._advance())
            while _is_digit(self._peek()):
                digits.append(self._advance())
        text = "".join(digits)
        if is_float:
            return Token(TokenKind.FLOAT_LITERAL, start, float(text))
        return Token(TokenKind.INT_LITERAL, start, int(text))

    def _lex_word(self) -> Token:
        start = self._location()
        chars: List[str] = []
        while _is_ident_char(self._peek()):
            chars.append(self._advance())
        word = "".join(chars)
        kind = KEYWORDS.get(word)
        if kind is not None:
            return Token(kind, start)
        return Token(TokenKind.IDENT, start, word)

    def next_token(self) -> Token:
        """Returns the next token, or an EOF token at end of input."""
        self._skip_trivia()
        if self._pos >= len(self._source):
            return Token(TokenKind.EOF, self._location())
        char = self._peek()
        if _is_digit(char):
            return self._lex_number()
        if _is_ident_start(char):
            return self._lex_word()
        start = self._location()
        two = char + self._peek(1)
        if two in _TWO_CHAR_OPERATORS:
            self._advance()
            self._advance()
            return Token(_TWO_CHAR_OPERATORS[two], start)
        if char in _ONE_CHAR_OPERATORS:
            self._advance()
            return Token(_ONE_CHAR_OPERATORS[char], start)
        raise LexError(f"unexpected character {char!r}", start)

    def tokens(self) -> Iterator[Token]:
        """Yields all tokens including the final EOF token."""
        while True:
            token = self.next_token()
            yield token
            if token.kind is TokenKind.EOF:
                return


def tokenize(source: str, filename: str = "<input>") -> List[Token]:
    """Convenience wrapper: lex ``source`` into a list of tokens."""
    return list(Lexer(source, filename).tokens())
