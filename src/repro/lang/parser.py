"""Recursive-descent parser for MiniSplit.

Expressions are parsed with precedence climbing; statements and
declarations with plain recursive descent.  The parser produces an
untyped AST — the checker (:mod:`repro.lang.checker`) fills in types.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind
from repro.lang.types import Distribution, ScalarKind, Type

#: Binary operator precedence (higher binds tighter).  Mirrors C.
_PRECEDENCE = {
    ast.BinaryOp.OR: 1,
    ast.BinaryOp.AND: 2,
    ast.BinaryOp.EQ: 3,
    ast.BinaryOp.NE: 3,
    ast.BinaryOp.LT: 4,
    ast.BinaryOp.LE: 4,
    ast.BinaryOp.GT: 4,
    ast.BinaryOp.GE: 4,
    ast.BinaryOp.ADD: 5,
    ast.BinaryOp.SUB: 5,
    ast.BinaryOp.MUL: 6,
    ast.BinaryOp.DIV: 6,
    ast.BinaryOp.MOD: 6,
}

_TOKEN_TO_BINOP = {
    TokenKind.OR: ast.BinaryOp.OR,
    TokenKind.AND: ast.BinaryOp.AND,
    TokenKind.EQ: ast.BinaryOp.EQ,
    TokenKind.NE: ast.BinaryOp.NE,
    TokenKind.LT: ast.BinaryOp.LT,
    TokenKind.LE: ast.BinaryOp.LE,
    TokenKind.GT: ast.BinaryOp.GT,
    TokenKind.GE: ast.BinaryOp.GE,
    TokenKind.PLUS: ast.BinaryOp.ADD,
    TokenKind.MINUS: ast.BinaryOp.SUB,
    TokenKind.STAR: ast.BinaryOp.MUL,
    TokenKind.SLASH: ast.BinaryOp.DIV,
    TokenKind.PERCENT: ast.BinaryOp.MOD,
}

_TYPE_KEYWORDS = {
    TokenKind.KW_INT: ScalarKind.INT,
    TokenKind.KW_DOUBLE: ScalarKind.DOUBLE,
    TokenKind.KW_VOID: ScalarKind.VOID,
    TokenKind.KW_FLAG: ScalarKind.FLAG,
    TokenKind.KW_LOCK: ScalarKind.LOCK,
}


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast.Program`."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token stream helpers ------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _check(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _match(self, kind: TokenKind) -> Optional[Token]:
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, context: str) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r} {context}, found {token.spelling!r}",
                token.location,
            )
        return self._advance()

    # -- top level -----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while not self._check(TokenKind.EOF):
            if self._check(TokenKind.KW_SHARED):
                program.shared_decls.append(self._parse_shared_decl())
            else:
                program.functions.append(self._parse_function())
        return program

    def _parse_scalar_kind(self, context: str) -> ScalarKind:
        token = self._peek()
        kind = _TYPE_KEYWORDS.get(token.kind)
        if kind is None:
            raise ParseError(
                f"expected a type {context}, found {token.spelling!r}",
                token.location,
            )
        self._advance()
        return kind

    def _parse_extents(self) -> List[int]:
        """Parses ``[N][M]...`` with compile-time integer extents."""
        extents: List[int] = []
        while self._check(TokenKind.LBRACKET):
            self._advance()
            token = self._expect(TokenKind.INT_LITERAL, "as array extent")
            extent = int(token.value)  # type: ignore[arg-type]
            if extent <= 0:
                raise ParseError("array extent must be positive", token.location)
            extents.append(extent)
            self._expect(TokenKind.RBRACKET, "after array extent")
        return extents

    def _parse_shared_decl(self) -> ast.SharedDecl:
        start = self._expect(TokenKind.KW_SHARED, "at shared declaration")
        kind = self._parse_scalar_kind("after 'shared'")
        if kind is ScalarKind.VOID:
            raise ParseError("shared variables cannot be void", start.location)
        name = self._expect(TokenKind.IDENT, "as shared variable name")
        extents = self._parse_extents()
        distribution = Distribution.BLOCK
        if self._match(TokenKind.KW_DIST):
            self._expect(TokenKind.LPAREN, "after 'dist'")
            token = self._peek()
            if self._match(TokenKind.KW_BLOCK):
                distribution = Distribution.BLOCK
            elif self._match(TokenKind.KW_CYCLIC):
                distribution = Distribution.CYCLIC
            else:
                raise ParseError(
                    "expected 'block' or 'cyclic' in dist(...)", token.location
                )
            self._expect(TokenKind.RPAREN, "after distribution kind")
        self._expect(TokenKind.SEMI, "after shared declaration")
        var_type = Type(kind, tuple(extents), shared=True, distribution=distribution)
        return ast.SharedDecl(
            location=start.location,
            name=str(name.value),
            var_type=var_type,
            distribution=distribution,
        )

    def _parse_function(self) -> ast.FuncDecl:
        start = self._peek()
        kind = self._parse_scalar_kind("at function declaration")
        name = self._expect(TokenKind.IDENT, "as function name")
        self._expect(TokenKind.LPAREN, "after function name")
        params: List[ast.Param] = []
        if not self._check(TokenKind.RPAREN):
            while True:
                param_start = self._peek()
                param_kind = self._parse_scalar_kind("as parameter type")
                if param_kind in (ScalarKind.VOID, ScalarKind.FLAG, ScalarKind.LOCK):
                    raise ParseError(
                        "parameters must be int or double", param_start.location
                    )
                param_name = self._expect(TokenKind.IDENT, "as parameter name")
                params.append(
                    ast.Param(
                        location=param_start.location,
                        name=str(param_name.value),
                        param_type=Type(param_kind),
                    )
                )
                if not self._match(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RPAREN, "after parameter list")
        body = self._parse_block()
        return ast.FuncDecl(
            location=start.location,
            name=str(name.value),
            return_type=Type(kind),
            params=params,
            body=body,
        )

    # -- statements ----------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        start = self._expect(TokenKind.LBRACE, "at block start")
        statements: List[ast.Stmt] = []
        while not self._check(TokenKind.RBRACE):
            if self._check(TokenKind.EOF):
                raise ParseError("unterminated block", start.location)
            statements.append(self._parse_statement())
        self._expect(TokenKind.RBRACE, "at block end")
        return ast.Block(location=start.location, statements=statements)

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        kind = token.kind
        if kind is TokenKind.LBRACE:
            return self._parse_block()
        if kind in _TYPE_KEYWORDS:
            return self._parse_var_decl()
        if kind is TokenKind.KW_IF:
            return self._parse_if()
        if kind is TokenKind.KW_WHILE:
            return self._parse_while()
        if kind is TokenKind.KW_FOR:
            return self._parse_for()
        if kind is TokenKind.KW_BARRIER:
            self._advance()
            self._expect(TokenKind.LPAREN, "after 'barrier'")
            self._expect(TokenKind.RPAREN, "after 'barrier('")
            self._expect(TokenKind.SEMI, "after barrier()")
            return ast.Barrier(location=token.location)
        if kind in (
            TokenKind.KW_POST,
            TokenKind.KW_WAIT,
            TokenKind.KW_LOCK_STMT,
            TokenKind.KW_UNLOCK,
        ):
            return self._parse_sync_statement()
        if kind is TokenKind.KW_RETURN:
            self._advance()
            value = None
            if not self._check(TokenKind.SEMI):
                value = self._parse_expression()
            self._expect(TokenKind.SEMI, "after return")
            return ast.Return(location=token.location, value=value)
        return self._parse_simple_statement(require_semi=True)

    def _parse_sync_statement(self) -> ast.Stmt:
        token = self._advance()
        self._expect(TokenKind.LPAREN, f"after '{token.kind.value}'")
        operand = self._parse_expression()
        self._expect(TokenKind.RPAREN, "after synchronization operand")
        self._expect(TokenKind.SEMI, "after synchronization statement")
        if token.kind is TokenKind.KW_POST:
            return ast.Post(location=token.location, flag=operand)
        if token.kind is TokenKind.KW_WAIT:
            return ast.Wait(location=token.location, flag=operand)
        if token.kind is TokenKind.KW_LOCK_STMT:
            return ast.LockStmt(location=token.location, lock=operand)
        return ast.UnlockStmt(location=token.location, lock=operand)

    def _parse_var_decl(self) -> ast.VarDecl:
        start = self._peek()
        kind = self._parse_scalar_kind("at declaration")
        if kind in (ScalarKind.VOID, ScalarKind.FLAG, ScalarKind.LOCK):
            raise ParseError(
                "local variables must be int or double "
                "(flags and locks must be shared)",
                start.location,
            )
        name = self._expect(TokenKind.IDENT, "as variable name")
        extents = self._parse_extents()
        init: Optional[ast.Expr] = None
        if self._match(TokenKind.ASSIGN):
            if extents:
                raise ParseError(
                    "array declarations cannot have initializers", start.location
                )
            init = self._parse_expression()
        self._expect(TokenKind.SEMI, "after declaration")
        return ast.VarDecl(
            location=start.location,
            name=str(name.value),
            var_type=Type(kind, tuple(extents)),
            init=init,
        )

    def _parse_simple_statement(self, require_semi: bool) -> ast.Stmt:
        """An assignment or a call-for-effect; used in for-headers too."""
        start = self._peek()
        expr = self._parse_expression()
        if self._match(TokenKind.ASSIGN):
            if not isinstance(expr, (ast.VarRef, ast.IndexExpr)):
                raise ParseError("assignment target must be a variable or element",
                                 start.location)
            value = self._parse_expression()
            stmt: ast.Stmt = ast.Assign(
                location=start.location, target=expr, value=value
            )
        else:
            if not isinstance(expr, ast.Call):
                raise ParseError(
                    "expression statements must be calls", start.location
                )
            stmt = ast.ExprStmt(location=start.location, expr=expr)
        if require_semi:
            self._expect(TokenKind.SEMI, "after statement")
        return stmt

    def _parse_if(self) -> ast.If:
        start = self._expect(TokenKind.KW_IF, "at if")
        self._expect(TokenKind.LPAREN, "after 'if'")
        condition = self._parse_expression()
        self._expect(TokenKind.RPAREN, "after if condition")
        then_body = self._statement_as_block()
        else_body: Optional[ast.Block] = None
        if self._match(TokenKind.KW_ELSE):
            else_body = self._statement_as_block()
        return ast.If(
            location=start.location,
            condition=condition,
            then_body=then_body,
            else_body=else_body,
        )

    def _parse_while(self) -> ast.While:
        start = self._expect(TokenKind.KW_WHILE, "at while")
        self._expect(TokenKind.LPAREN, "after 'while'")
        condition = self._parse_expression()
        self._expect(TokenKind.RPAREN, "after while condition")
        body = self._statement_as_block()
        return ast.While(location=start.location, condition=condition, body=body)

    def _parse_for(self) -> ast.For:
        start = self._expect(TokenKind.KW_FOR, "at for")
        self._expect(TokenKind.LPAREN, "after 'for'")
        init: Optional[ast.Stmt] = None
        if not self._check(TokenKind.SEMI):
            if self._peek().kind in _TYPE_KEYWORDS:
                init = self._parse_var_decl()  # consumes the ';'
            else:
                init = self._parse_simple_statement(require_semi=True)
        else:
            self._advance()
        condition: Optional[ast.Expr] = None
        if not self._check(TokenKind.SEMI):
            condition = self._parse_expression()
        self._expect(TokenKind.SEMI, "after for condition")
        step: Optional[ast.Stmt] = None
        if not self._check(TokenKind.RPAREN):
            step = self._parse_simple_statement(require_semi=False)
        self._expect(TokenKind.RPAREN, "after for header")
        body = self._statement_as_block()
        return ast.For(
            location=start.location,
            init=init,
            condition=condition,
            step=step,
            body=body,
        )

    def _statement_as_block(self) -> ast.Block:
        """Wraps a single-statement body in a Block for uniformity."""
        stmt = self._parse_statement()
        if isinstance(stmt, ast.Block):
            return stmt
        return ast.Block(location=stmt.location, statements=[stmt])

    # -- expressions ---------------------------------------------------------

    def _parse_expression(self, min_precedence: int = 0) -> ast.Expr:
        left = self._parse_unary()
        while True:
            op = _TOKEN_TO_BINOP.get(self._peek().kind)
            if op is None or _PRECEDENCE[op] < min_precedence:
                return left
            op_token = self._advance()
            right = self._parse_expression(_PRECEDENCE[op] + 1)
            left = ast.Binary(
                location=op_token.location, op=op, left=left, right=right
            )

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.MINUS:
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(
                location=token.location, op=ast.UnaryOp.NEG, operand=operand
            )
        if token.kind is TokenKind.NOT:
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(
                location=token.location, op=ast.UnaryOp.NOT, operand=operand
            )
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        if self._check(TokenKind.LBRACKET):
            if not isinstance(expr, ast.VarRef):
                raise ParseError("only variables can be indexed", expr.location)
            indices: List[ast.Expr] = []
            while self._match(TokenKind.LBRACKET):
                indices.append(self._parse_expression())
                self._expect(TokenKind.RBRACKET, "after index")
            return ast.IndexExpr(
                location=expr.location, base=expr, indices=indices
            )
        return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._advance()
        kind = token.kind
        if kind is TokenKind.INT_LITERAL:
            return ast.IntLiteral(location=token.location, value=int(token.value))
        if kind is TokenKind.FLOAT_LITERAL:
            return ast.FloatLiteral(
                location=token.location, value=float(token.value)
            )
        if kind is TokenKind.KW_MYPROC:
            return ast.MyProc(location=token.location)
        if kind is TokenKind.KW_PROCS:
            return ast.NumProcs(location=token.location)
        if kind is TokenKind.LPAREN:
            expr = self._parse_expression()
            self._expect(TokenKind.RPAREN, "after parenthesized expression")
            return expr
        if kind is TokenKind.IDENT:
            name = str(token.value)
            if self._check(TokenKind.LPAREN):
                self._advance()
                args: List[ast.Expr] = []
                if not self._check(TokenKind.RPAREN):
                    while True:
                        args.append(self._parse_expression())
                        if not self._match(TokenKind.COMMA):
                            break
                self._expect(TokenKind.RPAREN, "after call arguments")
                return ast.Call(location=token.location, name=name, args=args)
            return ast.VarRef(location=token.location, name=name)
        raise ParseError(
            f"unexpected token {token.spelling!r} in expression", token.location
        )


def parse(source: str, filename: str = "<input>") -> ast.Program:
    """Parses MiniSplit source text into an (untyped) AST."""
    return Parser(tokenize(source, filename)).parse_program()
