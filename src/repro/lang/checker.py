"""Semantic analysis for MiniSplit.

The checker walks the AST, builds symbol tables, decorates every
expression with its type, and enforces the language restrictions that
make the paper's analyses tractable (section 2):

* flags and locks must be ``shared`` (they synchronize processors);
* no global pointers — arrays and scalars only;
* post/wait take flag operands, lock/unlock take lock operands;
* shared flags/locks cannot be read or written as data;
* local variables are int/double (local data never enters the conflict
  analysis).

The output is a :class:`CheckedProgram` bundling the typed AST with the
symbol information the lowering pass needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import TypeError_
from repro.lang import ast
from repro.lang.symbols import Scope, Symbol, SymbolKind
from repro.lang.types import (
    DOUBLE,
    INT,
    ScalarKind,
    Type,
    arithmetic_result,
    assignable,
)

#: Intrinsic functions available without declaration.  Each maps to
#: (arity, parameter-kind constraint, result policy).  ``numeric`` results
#: follow the usual arithmetic conversions of the arguments.
INTRINSICS = {
    "min": 2,
    "max": 2,
    "abs": 1,
    "sqrt": 1,
    "floor": 1,
    "exp": 1,
    "sin": 1,
    "cos": 1,
}

#: Intrinsics that always produce a double result.
_DOUBLE_RESULT_INTRINSICS = {"sqrt", "exp", "sin", "cos"}
#: Intrinsics that always produce an int result.
_INT_RESULT_INTRINSICS = {"floor"}


@dataclass
class CheckedProgram:
    """A type-checked program plus its symbol information."""

    program: ast.Program
    global_scope: Scope
    #: name -> declared shared type (flags/locks included)
    shared_types: Dict[str, Type] = field(default_factory=dict)
    #: function name -> FuncDecl
    functions: Dict[str, ast.FuncDecl] = field(default_factory=dict)


class Checker:
    """Single-pass type checker; see module docstring."""

    def __init__(self, program: ast.Program):
        self._program = program
        self._global_scope = Scope()
        self._shared_types: Dict[str, Type] = {}
        self._functions: Dict[str, ast.FuncDecl] = {}
        self._current_return_type: Optional[Type] = None
        self._lock_depth = 0

    def check(self) -> CheckedProgram:
        for decl in self._program.shared_decls:
            self._declare_shared(decl)
        for func in self._program.functions:
            self._declare_function(func)
        if "main" not in self._functions:
            raise TypeError_("program has no main() function")
        main = self._functions["main"]
        if main.params or main.return_type.kind is not ScalarKind.VOID:
            raise TypeError_(
                "main must be declared 'void main()'", main.location
            )
        for func in self._program.functions:
            self._check_function(func)
        return CheckedProgram(
            program=self._program,
            global_scope=self._global_scope,
            shared_types=self._shared_types,
            functions=self._functions,
        )

    # -- declarations ---------------------------------------------------

    def _declare_shared(self, decl: ast.SharedDecl) -> None:
        self._global_scope.declare(
            Symbol(decl.name, SymbolKind.SHARED, decl.var_type, decl.location)
        )
        self._shared_types[decl.name] = decl.var_type

    def _declare_function(self, func: ast.FuncDecl) -> None:
        if func.name in INTRINSICS:
            raise TypeError_(
                f"{func.name!r} is a builtin intrinsic and cannot be redefined",
                func.location,
            )
        self._global_scope.declare(
            Symbol(func.name, SymbolKind.FUNCTION, func.return_type, func.location)
        )
        self._functions[func.name] = func

    # -- functions and statements ----------------------------------------

    def _check_function(self, func: ast.FuncDecl) -> None:
        scope = Scope(self._global_scope)
        for param in func.params:
            scope.declare(
                Symbol(param.name, SymbolKind.PARAM, param.param_type,
                       param.location)
            )
        self._current_return_type = func.return_type
        self._lock_depth = 0
        self._check_block(func.body, scope)
        if self._lock_depth != 0:
            raise TypeError_(
                f"function {func.name!r} has unbalanced lock/unlock "
                "along its straight-line body",
                func.location,
            )

    def _check_block(self, block: ast.Block, parent: Scope) -> None:
        scope = Scope(parent)
        for stmt in block.statements:
            self._check_statement(stmt, scope)

    def _check_statement(self, stmt: ast.Stmt, scope: Scope) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, ast.VarDecl):
            self._check_var_decl(stmt, scope)
        elif isinstance(stmt, ast.Assign):
            self._check_assign(stmt, scope)
        elif isinstance(stmt, ast.If):
            self._check_numeric(stmt.condition, scope, "if condition")
            self._check_block(stmt.then_body, scope)
            if stmt.else_body is not None:
                self._check_block(stmt.else_body, scope)
        elif isinstance(stmt, ast.While):
            self._check_numeric(stmt.condition, scope, "while condition")
            self._check_block(stmt.body, scope)
        elif isinstance(stmt, ast.For):
            inner = Scope(scope)
            if stmt.init is not None:
                self._check_statement(stmt.init, inner)
            if stmt.condition is not None:
                self._check_numeric(stmt.condition, inner, "for condition")
            if stmt.step is not None:
                self._check_statement(stmt.step, inner)
            self._check_block(stmt.body, inner)
        elif isinstance(stmt, ast.Barrier):
            pass
        elif isinstance(stmt, ast.Post):
            self._check_sync_operand(stmt.flag, scope, ScalarKind.FLAG, "post")
        elif isinstance(stmt, ast.Wait):
            self._check_sync_operand(stmt.flag, scope, ScalarKind.FLAG, "wait")
        elif isinstance(stmt, ast.LockStmt):
            self._check_sync_operand(stmt.lock, scope, ScalarKind.LOCK, "lock")
            self._lock_depth += 1
        elif isinstance(stmt, ast.UnlockStmt):
            self._check_sync_operand(stmt.lock, scope, ScalarKind.LOCK, "unlock")
            self._lock_depth -= 1
        elif isinstance(stmt, ast.ExprStmt):
            expr_type = self._check_expression(stmt.expr, scope)
            if expr_type.kind is not ScalarKind.VOID:
                raise TypeError_(
                    "only void calls may be used as statements", stmt.location
                )
        elif isinstance(stmt, ast.Return):
            expected = self._current_return_type
            if expected.kind is ScalarKind.VOID:
                if stmt.value is not None:
                    raise TypeError_(
                        "void function cannot return a value", stmt.location
                    )
            else:
                if stmt.value is None:
                    raise TypeError_(
                        "non-void function must return a value", stmt.location
                    )
                value_type = self._check_expression(stmt.value, scope)
                if not assignable(expected, value_type):
                    raise TypeError_(
                        f"cannot return {value_type} from a function "
                        f"returning {expected}",
                        stmt.location,
                    )
        else:  # pragma: no cover - defensive
            raise TypeError_(f"unknown statement {type(stmt).__name__}",
                             stmt.location)

    def _check_var_decl(self, decl: ast.VarDecl, scope: Scope) -> None:
        scope.declare(
            Symbol(decl.name, SymbolKind.LOCAL, decl.var_type, decl.location)
        )
        if decl.init is not None:
            init_type = self._check_expression(decl.init, scope)
            if not assignable(decl.var_type, init_type):
                raise TypeError_(
                    f"cannot initialize {decl.var_type} with {init_type}",
                    decl.location,
                )

    def _check_assign(self, stmt: ast.Assign, scope: Scope) -> None:
        target_type = self._check_expression(stmt.target, scope)
        if target_type.is_sync_object:
            raise TypeError_(
                "flags and locks may only be used with "
                "post/wait/lock/unlock",
                stmt.location,
            )
        value_type = self._check_expression(stmt.value, scope)
        if not assignable(target_type, value_type):
            raise TypeError_(
                f"cannot assign {value_type} to {target_type}", stmt.location
            )

    def _check_sync_operand(
        self, expr: ast.Expr, scope: Scope, expected: ScalarKind, what: str
    ) -> None:
        if not isinstance(expr, (ast.VarRef, ast.IndexExpr)):
            raise TypeError_(
                f"{what} operand must be a {expected.value} variable or element",
                expr.location,
            )
        operand_type = self._check_expression(expr, scope, allow_sync=True)
        if operand_type.kind is not expected or operand_type.is_array:
            raise TypeError_(
                f"{what} requires a {expected.value} operand, got {operand_type}",
                expr.location,
            )
        if not operand_type.shared:
            raise TypeError_(
                f"{what} operand must be shared", expr.location
            )

    # -- expressions -------------------------------------------------------

    def _check_numeric(
        self, expr: ast.Expr, scope: Scope, context: str
    ) -> Type:
        expr_type = self._check_expression(expr, scope)
        if not expr_type.is_numeric:
            raise TypeError_(
                f"{context} must be numeric, got {expr_type}", expr.location
            )
        return expr_type

    def _check_expression(
        self, expr: ast.Expr, scope: Scope, allow_sync: bool = False
    ) -> Type:
        expr_type = self._infer(expr, scope, allow_sync)
        expr.type = expr_type
        return expr_type

    def _infer(self, expr: ast.Expr, scope: Scope, allow_sync: bool) -> Type:
        if isinstance(expr, ast.IntLiteral):
            return INT
        if isinstance(expr, ast.FloatLiteral):
            return DOUBLE
        if isinstance(expr, (ast.MyProc, ast.NumProcs)):
            return INT
        if isinstance(expr, ast.VarRef):
            symbol = scope.lookup(expr.name)
            if symbol is None:
                raise TypeError_(f"undeclared variable {expr.name!r}",
                                 expr.location)
            if symbol.kind is SymbolKind.FUNCTION:
                raise TypeError_(
                    f"{expr.name!r} is a function, not a variable",
                    expr.location,
                )
            if symbol.type.is_sync_object and not allow_sync:
                raise TypeError_(
                    "flags and locks may only appear in "
                    "post/wait/lock/unlock",
                    expr.location,
                )
            return symbol.type
        if isinstance(expr, ast.IndexExpr):
            base_type = self._check_expression(expr.base, scope, allow_sync=True)
            if not base_type.is_array:
                raise TypeError_(
                    f"{expr.base.name!r} is not an array", expr.location
                )
            if len(expr.indices) != len(base_type.dims):
                raise TypeError_(
                    f"{expr.base.name!r} has {len(base_type.dims)} "
                    f"dimension(s), got {len(expr.indices)} index(es)",
                    expr.location,
                )
            for index in expr.indices:
                index_type = self._check_expression(index, scope)
                if index_type.kind is not ScalarKind.INT:
                    raise TypeError_("array indices must be int",
                                     index.location)
            element = base_type.element_type()
            if element.is_sync_object and not allow_sync:
                raise TypeError_(
                    "flag/lock elements may only appear in "
                    "post/wait/lock/unlock",
                    expr.location,
                )
            return element
        if isinstance(expr, ast.Binary):
            left = self._check_expression(expr.left, scope)
            right = self._check_expression(expr.right, scope)
            if not left.is_numeric or not right.is_numeric:
                raise TypeError_(
                    f"operator {expr.op.value!r} requires numeric operands",
                    expr.location,
                )
            if expr.op in (
                ast.BinaryOp.EQ,
                ast.BinaryOp.NE,
                ast.BinaryOp.LT,
                ast.BinaryOp.LE,
                ast.BinaryOp.GT,
                ast.BinaryOp.GE,
                ast.BinaryOp.AND,
                ast.BinaryOp.OR,
            ):
                return INT
            if expr.op is ast.BinaryOp.MOD:
                if left.kind is not ScalarKind.INT or right.kind is not ScalarKind.INT:
                    raise TypeError_("'%' requires int operands", expr.location)
                return INT
            return arithmetic_result(left, right)
        if isinstance(expr, ast.Unary):
            operand = self._check_expression(expr.operand, scope)
            if not operand.is_numeric:
                raise TypeError_(
                    f"operator {expr.op.value!r} requires a numeric operand",
                    expr.location,
                )
            if expr.op is ast.UnaryOp.NOT:
                return INT
            return operand
        if isinstance(expr, ast.Call):
            return self._infer_call(expr, scope)
        raise TypeError_(  # pragma: no cover - defensive
            f"unknown expression {type(expr).__name__}", expr.location
        )

    def _infer_call(self, expr: ast.Call, scope: Scope) -> Type:
        arity = INTRINSICS.get(expr.name)
        if arity is not None:
            if len(expr.args) != arity:
                raise TypeError_(
                    f"intrinsic {expr.name!r} expects {arity} argument(s)",
                    expr.location,
                )
            arg_types = [self._check_expression(arg, scope) for arg in expr.args]
            for arg_type, arg in zip(arg_types, expr.args):
                if not arg_type.is_numeric:
                    raise TypeError_(
                        f"intrinsic {expr.name!r} requires numeric arguments",
                        arg.location,
                    )
            if expr.name in _DOUBLE_RESULT_INTRINSICS:
                return DOUBLE
            if expr.name in _INT_RESULT_INTRINSICS:
                return INT
            result = arg_types[0]
            for arg_type in arg_types[1:]:
                result = arithmetic_result(result, arg_type)
            return result
        func = self._functions.get(expr.name)
        if func is None:
            raise TypeError_(f"call to undeclared function {expr.name!r}",
                             expr.location)
        if len(expr.args) != len(func.params):
            raise TypeError_(
                f"{expr.name!r} expects {len(func.params)} argument(s), "
                f"got {len(expr.args)}",
                expr.location,
            )
        for arg, param in zip(expr.args, func.params):
            arg_type = self._check_expression(arg, scope)
            if not assignable(param.param_type, arg_type):
                raise TypeError_(
                    f"argument {param.name!r} of {expr.name!r}: cannot pass "
                    f"{arg_type} as {param.param_type}",
                    arg.location,
                )
        return func.return_type


def check(program: ast.Program) -> CheckedProgram:
    """Type-checks a parsed program; raises :class:`TypeError_` on failure."""
    return Checker(program).check()
