"""The differential fuzzing campaign driver.

One campaign iteration:

1. generate a seeded random program under the configured profile;
2. check **delay-set monotonicity** (SYNC ⊆ Shasha–Snir ∪ D1) on its
   analysis;
3. compile it at every configured optimization level through the
   shared compile pool (:mod:`repro.perf.parallel`);
4. run every compiled variant under N adversarial schedules (seeded
   network jitter, varied machine models, the program's processor
   count) and cross-check **final-snapshot agreement** and **trace
   sequential consistency** (step-limit skips counted separately);
5. on any failure, shrink the program with delta debugging (re-running
   the same oracle) and write a self-contained repro bundle under
   ``fuzz-failures/``.

Budgets are either a fixed iteration count or a wall-clock allowance;
the campaign stops early after ``max_failures`` distinct failures.
``compile_fn``/``analyze_fn`` are injectable so the test suite can
prove a deliberately broken compiler *is* caught and minimized.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.fuzz.bundle import write_bundle
from repro.fuzz.minimize import minimize_program
from repro.fuzz.oracles import (
    SC_VIOLATION,
    OracleFailure,
    ScTally,
    check_delay_monotonicity,
    check_trace_sc,
    compare_snapshots,
    trace_digest,
)
from repro.fuzz.progen import GeneratedProgram, generate_program

#: The paper-facing names for the differential level set: naive
#: blocking code, Shasha–Snir-constrained pipelining, and the full
#: synchronization-aware optimization.
LEVEL_NAMES: Dict[str, str] = {
    "NAIVE": "O0",
    "SHASHA_SNIR": "O1",
    "SYNC": "O3",
}

DEFAULT_LEVELS: Tuple[str, ...] = tuple(LEVEL_NAMES.values())

#: Adversarial jitter magnitudes (cycles of random extra wire time).
JITTERS: Tuple[int, ...] = (0, 100, 250, 400)

MACHINE_NAMES: Tuple[str, ...] = ("cm5", "t3d", "dash")


#: Fault severities the ``faulty`` profile samples from: (drop, dup)
#: probabilities applied to every message kind, transport acks included.
FAULT_RATES: Tuple[Tuple[float, float], ...] = (
    (0.05, 0.0), (0.1, 0.05), (0.2, 0.1),
)


@dataclass(frozen=True)
class Schedule:
    """One adversarial execution schedule."""

    net_seed: int
    machine: str
    jitter: int
    #: fault-plan spec string (None = perfect network)
    faults: Optional[str] = None
    fault_seed: int = 0
    #: memory model the simulated hardware executes ("sc" = historical)
    memory_model: str = "sc"
    drain_seed: int = 0

    def machine_config(self):
        from repro.runtime.machine import get_machine

        machine = get_machine(self.machine).with_jitter(self.jitter)
        if self.memory_model != "sc":
            machine = machine.with_memory_model(
                self.memory_model, self.drain_seed
            )
        return machine

    def fault_plan(self):
        """The parsed FaultPlan, or None on a perfect network."""
        if self.faults is None:
            return None
        from repro.runtime.network import FaultPlan

        return FaultPlan.parse(self.faults, seed=self.fault_seed)

    def as_dict(self) -> dict:
        data = {
            "net_seed": self.net_seed,
            "machine": self.machine,
            "jitter": self.jitter,
        }
        if self.faults is not None:
            data["faults"] = self.faults
            data["fault_seed"] = self.fault_seed
        if self.memory_model != "sc":
            data["memory_model"] = self.memory_model
            data["drain_seed"] = self.drain_seed
        return data


@dataclass
class FuzzConfig:
    """Everything a campaign needs; every knob has a CLI flag."""

    seed: int = 0
    profile: str = "mixed"
    #: Stop after this many programs (None = wall-clock budget only).
    iterations: Optional[int] = None
    #: Stop after this many seconds (None = iteration budget only).
    budget_seconds: Optional[float] = None
    schedules_per_program: int = 3
    levels: Tuple[str, ...] = DEFAULT_LEVELS
    procs_choices: Tuple[int, ...] = (2, 3, 4)
    phase_range: Tuple[int, int] = (3, 5)
    #: Barrier topology every schedule's machine runs ("central" =
    #: the seed rendezvous; "sense"/"tree" exercise the scalable
    #: topologies against the same snapshot/SC oracles).
    barrier_topology: str = "central"
    sc_step_limit: int = 20_000
    failures_dir: str = "fuzz-failures"
    max_failures: int = 5
    minimize: bool = True
    minimize_budget: int = 48
    #: Compile pool width (None = auto, 0/1 = in-process).
    jobs: Optional[int] = None
    use_cache: Optional[bool] = None
    #: Run IR verification after every mutating codegen pass (the
    #: ``--verify-passes`` flag): each compile goes through the session
    #: path with :class:`~repro.pipeline.PipelineOptions`
    #: ``verify_each_pass`` set, so a pass that corrupts the IR is
    #: pinned to its name instead of surfacing as a downstream oracle
    #: failure.
    verify_each_pass: bool = False
    #: Run every compiled variant as its delay-stripped twin (same IR,
    #: weak-memory fence metadata removed).  The robustness canary sets
    #: this to prove the compiled delays are load-bearing under TSO.
    strip_delays: bool = False
    #: Injectable compiler: (source, level_value) -> CompiledProgram.
    compile_fn: Optional[Callable[[str, str], object]] = None
    #: Injectable analyzer: (source, AnalysisLevel) -> AnalysisResult.
    analyze_fn: Optional[Callable[[str, object], object]] = None

    def effective_iterations(self) -> Optional[int]:
        if self.iterations is None and self.budget_seconds is None:
            return 20
        return self.iterations


@dataclass
class CampaignStats:
    """Campaign accounting; ``as_dict`` is the CI-facing JSON."""

    seed: int = 0
    profile: str = "mixed"
    levels: Tuple[str, ...] = DEFAULT_LEVELS
    programs: int = 0
    compiles: int = 0
    schedules_run: int = 0
    runs: int = 0
    #: runs executed over a lossy network (subset of ``runs``)
    fault_runs: int = 0
    #: retransmissions observed across all lossy runs
    retransmits: int = 0
    #: runs executed under a TSO/PSO store buffer (subset of ``runs``)
    weak_runs: int = 0
    #: the SB-litmus canary verdict for weak profiles (None otherwise):
    #: delayed build robust, stripped twin caught by the SC oracle.
    weak_canary: Optional[dict] = None
    sc: ScTally = field(default_factory=ScTally)
    monotonicity_checks: int = 0
    failures: List[dict] = field(default_factory=list)
    bundles: List[str] = field(default_factory=list)
    minimizer_tests: int = 0
    elapsed_seconds: float = 0.0

    @property
    def failure_count(self) -> int:
        return len(self.failures)

    def as_dict(self) -> dict:
        return {
            "schema": 1,
            "seed": self.seed,
            "profile": self.profile,
            "levels": list(self.levels),
            "programs": self.programs,
            "compiles": self.compiles,
            "schedules_run": self.schedules_run,
            "runs": self.runs,
            "fault_runs": self.fault_runs,
            "retransmits": self.retransmits,
            "weak_runs": self.weak_runs,
            "weak_canary": self.weak_canary,
            "sc_checks": self.sc.checks,
            "sc_skips": self.sc.skips,
            "sc_violations": self.sc.violations,
            "monotonicity_checks": self.monotonicity_checks,
            "failures": self.failures,
            "bundles": self.bundles,
            "minimizer_tests": self.minimizer_tests,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
        }


def _default_analyze(source: str, level):
    from repro import analyze_source

    return analyze_source(source, level)


def _compile_levels(
    source: str, levels: Sequence[str], config: FuzzConfig
) -> List[object]:
    """Compiles ``source`` at every level, through the pool by default."""
    if config.compile_fn is not None:
        return [config.compile_fn(source, level) for level in levels]
    from repro.perf.parallel import compile_levels

    options = None
    processes = config.jobs
    use_cache = config.use_cache
    if config.verify_each_pass:
        from repro.pipeline import PipelineOptions

        options = PipelineOptions(verify_each_pass=True)
        # Options only thread through the shared-session path (pool
        # workers would quietly compile without verification), and a
        # disk-cache hit would skip the passes being verified.
        processes = None
        use_cache = False
    return compile_levels(
        source, levels, processes=processes,
        use_cache=use_cache, options=options,
    )


def check_program(
    program: GeneratedProgram,
    schedules: Sequence[Schedule],
    config: FuzzConfig,
    stats: Optional[CampaignStats] = None,
) -> Optional[OracleFailure]:
    """Runs every oracle on one program; None when all pass."""
    source = program.source
    tally = stats.sc if stats is not None else ScTally()

    # Oracle 3: delay-set monotonicity (static, once per program).
    analyze = config.analyze_fn or _default_analyze
    from repro.analysis.delays import AnalysisLevel

    try:
        sas = analyze(source, AnalysisLevel.SAS)
        sync = analyze(source, AnalysisLevel.SYNC)
    except ReproError as exc:
        return OracleFailure("crash", f"analysis raised: {exc}")
    if stats is not None:
        stats.monotonicity_checks += 1
    detail = check_delay_monotonicity(sas, sync)
    if detail is not None:
        return OracleFailure("monotonicity", detail)

    try:
        compiled = _compile_levels(source, config.levels, config)
    except ReproError as exc:
        return OracleFailure("crash", f"compile raised: {exc}")
    if config.strip_delays:
        # The delay-stripped twin: identical IR, no weak-memory fence
        # metadata (injected fake compilers without the method are run
        # as-is — they never carry fences in the first place).
        compiled = [
            variant.without_delay_fences()
            if hasattr(variant, "without_delay_fences") else variant
            for variant in compiled
        ]
    if stats is not None:
        stats.compiles += len(config.levels)

    reference = None
    reference_at = None
    for schedule in schedules:
        machine = schedule.machine_config()
        if config.barrier_topology != "central":
            machine = machine.with_barrier_topology(config.barrier_topology)
        plan = schedule.fault_plan()
        if stats is not None:
            stats.schedules_run += 1
        for level, variant in zip(config.levels, compiled):
            # Lossy runs skip tracing/SC (the snapshot-agreement oracle
            # against the fault-free reference is their contract); the
            # kwarg stays conditional so injected fake compilers keep
            # their simple run() signatures.
            run_kwargs = {"trace": True}
            if plan is not None:
                run_kwargs = {"trace": False, "fault_plan": plan}
            try:
                result = variant.run(
                    program.procs, machine, seed=schedule.net_seed,
                    **run_kwargs,
                )
            except ReproError as exc:
                return OracleFailure(
                    "crash", f"simulation raised: {exc}",
                    level=level, schedule=schedule.as_dict(),
                )
            if stats is not None:
                stats.runs += 1
                if plan is not None:
                    stats.fault_runs += 1
                    stats.retransmits += result.network.stats.retransmits
                if schedule.memory_model != "sc":
                    stats.weak_runs += 1

            # Oracle 1: deterministic programs agree everywhere.
            if program.deterministic:
                snapshot = result.snapshot()
                if reference is None:
                    reference = snapshot
                    reference_at = (level, schedule)
                else:
                    detail = compare_snapshots(reference, snapshot)
                    if detail is not None:
                        ref_level, ref_schedule = reference_at
                        return OracleFailure(
                            "snapshot",
                            f"{detail} (reference from {ref_level} "
                            f"under {ref_schedule.as_dict()})",
                            level=level,
                            schedule=schedule.as_dict(),
                            trace_digest=(
                                trace_digest(result.trace)
                                if result.trace is not None else None
                            ),
                        )

            # Oracle 2: every checkable trace is SC.  uid-sorting only
            # recovers source order for straight-line programs; loopy
            # programs are checked at O0, where issue order *is*
            # program order.  Lossy runs carry no trace (see above).
            if plan is None and (program.straight_line or level == "O0"):
                outcome = check_trace_sc(
                    result.trace, program.straight_line,
                    config.sc_step_limit,
                )
                tally.record(outcome)
                if outcome == SC_VIOLATION:
                    return OracleFailure(
                        "sc",
                        "trace admits no sequentially consistent "
                        "total order",
                        level=level,
                        schedule=schedule.as_dict(),
                        trace_digest=trace_digest(result.trace),
                    )
    return None


def _profile_is_faulty(name: str) -> bool:
    from repro.fuzz.progen import PROFILES

    profile = PROFILES.get(name)
    return profile is not None and profile.faulty


def _profile_is_weak(name: str) -> bool:
    from repro.fuzz.progen import PROFILES

    profile = PROFILES.get(name)
    return profile is not None and profile.weak


def _make_schedules(rng: random.Random, config: FuzzConfig
                    ) -> List[Schedule]:
    schedules = [
        Schedule(
            net_seed=rng.getrandbits(16),
            machine=rng.choice(MACHINE_NAMES),
            jitter=rng.choice(JITTERS),
        )
        for _ in range(config.schedules_per_program)
    ]
    if _profile_is_faulty(config.profile):
        # Mirror each fault-free schedule with a lossy twin; the
        # snapshot oracle then asserts perfect-network and lossy runs
        # of the same program agree (and the fault-free schedules above
        # keep providing the reference snapshot and SC coverage).
        for base in list(schedules):
            drop, dup = rng.choice(FAULT_RATES)
            spec = f"drop={drop},dup={dup}"
            if rng.random() < 0.25:
                spec += ",spike=0.05:2000"
            if rng.random() < 0.25:
                # Delivery is only guaranteed for partitions that heal
                # within the retransmission window, so stay inside the
                # protocol's envelope: bound the outage and widen the
                # retry budget (on the lowest-RTO machine, t3d, cap 16
                # leaves ~10 post-heal attempts for the worst outage
                # generated here — a legitimate NetworkFault would
                # otherwise surface as a false campaign failure).
                a, b = rng.sample(range(4), 2)
                start = rng.randrange(0, 5000)
                duration = rng.randrange(2000, 12000)
                spec += f",partition={a}-{b}@{start}+{duration},retry_cap=16"
            schedules.append(Schedule(
                net_seed=base.net_seed,
                machine=base.machine,
                jitter=base.jitter,
                faults=spec,
                fault_seed=rng.getrandbits(16),
            ))
    if _profile_is_weak(config.profile):
        # Mirror each SC schedule with a TSO and a PSO twin (same
        # network seed/machine/jitter, fresh drain seed).  For the
        # deterministic weak profile the snapshot oracle then asserts
        # SC-vs-TSO-vs-PSO agreement — the robustness oracle.
        for base in list(schedules):
            for model in ("tso", "pso"):
                schedules.append(Schedule(
                    net_seed=base.net_seed,
                    machine=base.machine,
                    jitter=base.jitter,
                    memory_model=model,
                    drain_seed=rng.getrandbits(16),
                ))
    return schedules


#: Drain seeds the SB-litmus canary sweeps.  Fixed (not drawn from the
#: campaign RNG) so the canary verdict is identical for every campaign:
#: on cm5's default drain window a majority of these seeds reorder the
#: stripped twin's reads past its buffered writes.
CANARY_DRAIN_SEEDS: Tuple[int, ...] = (0, 1, 2, 3, 4, 5, 6, 7)


def _canary_schedules() -> List[Schedule]:
    return [
        Schedule(net_seed=0, machine="cm5", jitter=0,
                 memory_model="tso", drain_seed=drain_seed)
        for drain_seed in CANARY_DRAIN_SEEDS
    ]


def _check_weak_canary(
    config: FuzzConfig,
    stats: CampaignStats,
    log: Callable[[str], None],
) -> None:
    """The robustness oracle's teeth check, run once per weak campaign.

    Compiles the SB litmus shape twice and sweeps both builds over TSO
    drain schedules:

    * the **delayed** build must stay sequentially consistent on every
      drain seed (the compiled delays make it robust) — a violation is
      a genuine campaign failure;
    * the **delay-stripped twin** must exhibit the non-SC ``[0, 0]``
      outcome on some seed and the SC oracle must catch it — if it
      does not, the weak backend or the oracle has lost its teeth,
      which is also a campaign failure.  The caught violation is
      minimized and bundled like any failure (proof the whole
      failure pipeline handles weak-memory repros), but counted under
      ``weak_canary``, not ``failures``.
    """
    import dataclasses

    from repro.fuzz.litmus import sb_program

    program = sb_program()
    schedules = _canary_schedules()
    verdict: dict = {
        "program": "sb",
        "memory_model": "tso",
        "drain_seeds": list(CANARY_DRAIN_SEEDS),
    }
    delayed = check_program(program, schedules, config, stats)
    if delayed is not None:
        log("weak canary: delayed SB litmus is NOT robust under TSO")
        _handle_failure(
            program, delayed, schedules, config, stats, -1, log
        )
        verdict["delayed_robust"] = False
        verdict["caught_stripped"] = None
        stats.weak_canary = verdict
        return
    verdict["delayed_robust"] = True

    stripped_config = dataclasses.replace(config, strip_delays=True)
    stripped = check_program(program, schedules, stripped_config, stats)
    if stripped is None or stripped.oracle != "sc":
        log(
            "weak canary: delay-stripped SB twin showed no SC violation "
            "- the weak backend or the SC oracle lost its teeth"
        )
        toothless = OracleFailure(
            "weak_canary",
            "delay-stripped SB litmus produced no SC violation under "
            f"TSO across drain seeds {list(CANARY_DRAIN_SEEDS)}",
            stripped=True,
        )
        _handle_failure(
            program, toothless, schedules, config, stats, -1, log
        )
        verdict["caught_stripped"] = False
        stats.weak_canary = verdict
        return

    # Expected divergence: minimize and bundle it exactly like a real
    # failure (exercising ddmin + bundles on a weak-memory repro), but
    # record it as the canary verdict rather than a campaign failure.
    stripped.stripped = True
    log(f"weak canary: stripped twin caught - {stripped.summary()}")
    minimized = program
    if config.minimize:
        tests = 0

        def still_fails(candidate: GeneratedProgram) -> bool:
            nonlocal tests
            tests += 1
            repro = check_program(candidate, schedules, stripped_config)
            return repro is not None and repro.oracle == stripped.oracle

        minimized = minimize_program(
            program, still_fails, max_tests=config.minimize_budget
        )
        stats.minimizer_tests += tests
    bundle_dir = write_bundle(
        config.failures_dir,
        stripped,
        minimized,
        program,
        campaign_meta={
            "campaign_seed": config.seed,
            "profile": config.profile,
            "levels": list(config.levels),
            "schedules": [s.as_dict() for s in schedules],
            "sc_step_limit": config.sc_step_limit,
            "iteration": -1,
            "expected_divergence": True,
        },
        index=len(stats.bundles),
    )
    stats.bundles.append(bundle_dir)
    verdict["caught_stripped"] = True
    verdict["detail"] = stripped.detail
    verdict["level"] = stripped.level
    verdict["schedule"] = stripped.schedule
    verdict["bundle"] = bundle_dir
    stats.weak_canary = verdict
    log(f"weak canary: bundle written to {bundle_dir}")


def _handle_failure(
    program: GeneratedProgram,
    failure: OracleFailure,
    schedules: Sequence[Schedule],
    config: FuzzConfig,
    stats: CampaignStats,
    iteration: int,
    log: Callable[[str], None],
) -> None:
    log(f"FAILURE {failure.summary()} (program seed {program.seed})")
    minimized = program
    if config.minimize:
        tests = 0

        def still_fails(candidate: GeneratedProgram) -> bool:
            nonlocal tests
            tests += 1
            repro = check_program(candidate, schedules, config)
            return repro is not None and repro.oracle == failure.oracle

        minimized = minimize_program(
            program, still_fails, max_tests=config.minimize_budget
        )
        stats.minimizer_tests += tests
        log(
            f"  minimized {len(program.phases)} phases/"
            f"{program.procs} procs -> {len(minimized.phases)} phases/"
            f"{minimized.procs} procs ({tests} oracle re-runs)"
        )
    bundle_dir = write_bundle(
        config.failures_dir,
        failure,
        minimized,
        program,
        campaign_meta={
            "campaign_seed": config.seed,
            "profile": config.profile,
            "levels": list(config.levels),
            "schedules": [s.as_dict() for s in schedules],
            "sc_step_limit": config.sc_step_limit,
            "iteration": iteration,
        },
        index=stats.failure_count,
    )
    stats.bundles.append(bundle_dir)
    stats.failures.append({
        "oracle": failure.oracle,
        "detail": failure.detail,
        "level": failure.level,
        "schedule": failure.schedule,
        "trace_digest": failure.trace_digest,
        "program_seed": program.seed,
        "bundle": bundle_dir,
    })
    log(f"  bundle written to {bundle_dir}")


def run_campaign(
    config: FuzzConfig,
    log: Optional[Callable[[str], None]] = None,
) -> CampaignStats:
    """Runs one fuzzing campaign to its budget; returns the stats."""
    log = log or (lambda message: None)
    rng = random.Random(config.seed)
    stats = CampaignStats(
        seed=config.seed, profile=config.profile, levels=config.levels
    )
    start = time.monotonic()
    if _profile_is_weak(config.profile):
        _check_weak_canary(config, stats, log)
    iterations = config.effective_iterations()
    iteration = 0
    while True:
        if iterations is not None and iteration >= iterations:
            break
        if config.budget_seconds is not None and (
            time.monotonic() - start >= config.budget_seconds
        ):
            break
        if stats.failure_count >= config.max_failures:
            log("max failures reached; stopping early")
            break
        gen_seed = rng.getrandbits(32)
        procs = rng.choice(config.procs_choices)
        num_phases = rng.randint(*config.phase_range)
        program = generate_program(
            gen_seed, config.profile, procs, num_phases
        )
        schedules = _make_schedules(rng, config)
        failure = check_program(program, schedules, config, stats)
        stats.programs += 1
        if failure is not None:
            _handle_failure(
                program, failure, schedules, config, stats,
                iteration, log,
            )
        iteration += 1
        if iteration % 10 == 0:
            log(
                f"{iteration} programs, {stats.schedules_run} schedules,"
                f" {stats.sc.checks} SC checks ({stats.sc.skips} skips),"
                f" {stats.failure_count} failures"
            )
    stats.elapsed_seconds = time.monotonic() - start
    return stats
