"""Self-contained repro bundles for fuzz failures.

A bundle is one directory under ``fuzz-failures/`` holding everything
needed to reproduce and debug one oracle failure offline:

* ``program.ms`` — the minimized program;
* ``original.ms`` — the unreduced program the campaign generated;
* ``repro.json`` — generator seed/profile/procs, the adversarial
  schedules (network seed, machine, jitter), the optimization levels,
  the failing oracle with its detail, the trace digest, and a
  ready-to-paste reproduction hint.

Bundles are plain files: they can be attached to a CI artifact, mailed
around, and replayed with nothing but this repository.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.fuzz.oracles import OracleFailure
from repro.fuzz.progen import GeneratedProgram

BUNDLE_SCHEMA = 1


def bundle_name(failure: OracleFailure,
                program: GeneratedProgram, index: int) -> str:
    return (
        f"{failure.oracle}-{program.profile}-seed{program.seed}-{index:03d}"
    )


def write_bundle(
    failures_dir: str,
    failure: OracleFailure,
    minimized: GeneratedProgram,
    original: GeneratedProgram,
    campaign_meta: dict,
    index: int = 0,
) -> str:
    """Writes one failure bundle; returns the bundle directory path."""
    directory = os.path.join(
        failures_dir, bundle_name(failure, original, index)
    )
    os.makedirs(directory, exist_ok=True)

    with open(os.path.join(directory, "program.ms"), "w",
              encoding="utf-8") as handle:
        handle.write(minimized.source)
    with open(os.path.join(directory, "original.ms"), "w",
              encoding="utf-8") as handle:
        handle.write(original.source)

    manifest = {
        "schema": BUNDLE_SCHEMA,
        "oracle": failure.oracle,
        "detail": failure.detail,
        "level": failure.level,
        "schedule": failure.schedule,
        "trace_digest": failure.trace_digest,
        "stripped": failure.stripped,
        "generator": {
            "seed": original.seed,
            "profile": original.profile,
            "procs": original.procs,
            "num_phases": len(original.phases),
        },
        "minimized": {
            "procs": minimized.procs,
            "num_phases": len(minimized.phases),
        },
        "campaign": campaign_meta,
        "repro_hint": _repro_hint(minimized, failure),
    }
    with open(os.path.join(directory, "repro.json"), "w",
              encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return directory


def _repro_hint(program: GeneratedProgram,
                failure: OracleFailure) -> str:
    schedule = failure.schedule or {}
    machine = schedule.get("machine", "cm5")
    seed = schedule.get("net_seed", 0)
    level = failure.level or "O3"
    if level not in ("O0", "O1", "O2", "O3", "O4"):
        level = "O3"
    faults = ""
    if schedule.get("faults"):
        faults = (
            f" --faults '{schedule['faults']}'"
            f" --fault-seed {schedule.get('fault_seed', 0)}"
        )
    weak = ""
    if schedule.get("memory_model"):
        weak = (
            f" --memory-model {schedule['memory_model']}"
            f" --drain-seed {schedule.get('drain_seed', 0)}"
        )
        if failure.stripped:
            weak += " --strip-delays"
    return (
        f"repro run program.ms --opt {level} --procs {program.procs} "
        f"--machine {machine} --seed {seed}{faults}{weak} --dump 8   "
        f"# compare against --opt O0"
    )


def read_bundle(directory: str) -> Optional[dict]:
    """Loads a bundle's manifest (None when absent/corrupt)."""
    try:
        with open(os.path.join(directory, "repro.json"), "r",
                  encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
