"""Delta-debugging minimization of failing fuzz programs.

Classic ddmin over a :class:`~repro.fuzz.progen.GeneratedProgram`'s
phase list — try dropping chunks at increasing granularity, keeping any
reduction under which the failure predicate still holds — followed by a
processor-count shrink.  The predicate re-runs the *same* oracle on the
candidate (same schedules, same injected compiler), so minimization
never drifts onto a different bug.

Any phase subset re-renders to a valid program by construction (see
``GeneratedProgram.subset``), which is what makes statement-level
delta debugging safe here.
"""

from __future__ import annotations

from typing import Callable

from repro.fuzz.progen import GeneratedProgram

#: The predicate: does this candidate still exhibit the failure?
FailurePredicate = Callable[[GeneratedProgram], bool]


def _ddmin_phases(
    program: GeneratedProgram,
    still_fails: FailurePredicate,
    max_tests: int,
) -> tuple:
    """Zeller-style ddmin on the phase index list.

    Returns (program, tests_used).
    """
    indices = list(range(len(program.phases)))
    granularity = 2
    tests = 0
    while len(indices) >= 2 and tests < max_tests:
        chunk = max(1, len(indices) // granularity)
        reduced = False
        start = 0
        while start < len(indices) and tests < max_tests:
            candidate_indices = indices[:start] + indices[start + chunk:]
            candidate = program.subset(candidate_indices)
            tests += 1
            if candidate.phases and still_fails(candidate):
                indices = candidate_indices
                granularity = max(granularity - 1, 2)
                reduced = True
                # Restart the sweep on the reduced list.
                start = 0
                continue
            start += chunk
        if not reduced:
            if granularity >= len(indices):
                break
            granularity = min(len(indices), granularity * 2)
    return program.subset(indices), tests


def _shrink_procs(
    program: GeneratedProgram,
    still_fails: FailurePredicate,
    max_tests: int,
) -> tuple:
    """Smallest processor count (>= phase requirements) still failing."""
    tests = 0
    for procs in range(program.min_procs, program.procs):
        if tests >= max_tests:
            break
        candidate = program.with_procs(procs)
        tests += 1
        if still_fails(candidate):
            return candidate, tests
    return program, tests


def minimize_program(
    program: GeneratedProgram,
    still_fails: FailurePredicate,
    max_tests: int = 64,
) -> GeneratedProgram:
    """The smallest variant of ``program`` still failing the oracle.

    ``max_tests`` bounds total oracle re-runs (each re-run compiles and
    simulates the candidate at every level, so this is the expensive
    knob).  The original program is returned unchanged if no reduction
    reproduces the failure — including when the failure itself turns
    out to be flaky (``still_fails(program)`` is re-checked first).
    """
    if not still_fails(program):
        return program
    budget = max_tests
    reduced, used = _ddmin_phases(program, still_fails, budget)
    budget -= used
    if budget > 0:
        reduced, _ = _shrink_procs(reduced, still_fails, budget)
    return reduced
