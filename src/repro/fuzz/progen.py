"""Random SPMD program generation for differential fuzzing.

Promoted from ``tests/properties/progen.py`` and extended with stress
profiles.  Deterministic profiles generate MiniSplit programs whose
final shared-memory contents are *independent of timing*, so any two
compilations must produce identical snapshots.  Determinism is
guaranteed by construction:

* data phases write only the executing processor's own partition
  (``V[MYPROC*B + i]``) and are separated from conflicting reads by
  barriers;
* gather phases read a neighbor's block of the *previous* phase's
  variable;
* scalar phases are owner-guarded (``if (MYPROC == 0)``);
* lock phases update shared accumulators commutatively (sums), so the
  final value is order-independent;
* post/wait ring phases read only data the matching post ordered.

The ``racy`` profile deliberately breaks determinism (unsynchronized
conflicting accesses) while keeping traces tiny, so the exact SC
checker applies to every optimization level's execution.

Every program is seeded (one seed = one program) and structured: a
:class:`GeneratedProgram` knows its declaration and phase specs, so the
delta-debugging minimizer can drop phases or shrink the processor
count and re-render a valid program.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Sequence, Tuple

BLOCK = 4  # elements per processor per array

#: Local declarations inside main() for the deterministic profiles.
_DET_HEADER = (
    f"  int i; int nb;\n"
    f"  double tmp;\n"
    f"  double buf[{BLOCK}];\n"
    f"  int base = MYPROC * {BLOCK};"
)

#: Local declarations for the racy profile.
_RACY_HEADER = "  int t;"


@dataclass(frozen=True)
class DeclSpec:
    """One shared declaration, parameterized by the processor count."""

    name: str
    #: "array" (double, BLOCK*procs), "scalar" (double), "flags"
    #: (flag_t, procs), "lock" (lock_t) or "int_array" (int, procs).
    kind: str

    def render(self, procs: int) -> str:
        if self.kind == "array":
            return f"shared double {self.name}[{BLOCK * procs}];"
        if self.kind == "scalar":
            return f"shared double {self.name};"
        if self.kind == "flags":
            return f"shared flag_t {self.name}[{procs}];"
        if self.kind == "lock":
            return f"shared lock_t {self.name};"
        if self.kind == "int_array":
            return f"shared int {self.name}[{procs}];"
        raise ValueError(f"unknown decl kind {self.kind!r}")


@dataclass(frozen=True)
class Phase:
    """One generated program phase: a body plus minimization metadata."""

    kind: str
    body: str
    #: Smallest processor count the body's baked constants tolerate
    #: (guard indices, remote element indices).
    min_procs: int = 1


@dataclass(frozen=True)
class GeneratedProgram:
    """A structured random program that the minimizer can re-render."""

    seed: int
    profile: str
    procs: int
    decls: Tuple[DeclSpec, ...]
    phases: Tuple[Phase, ...]
    header: str
    #: Timing-independent final memory (snapshot oracle applies)?
    deterministic: bool
    #: Per-processor loop-free (uid-sorted traces are source order)?
    straight_line: bool

    @property
    def source(self) -> str:
        decls = "\n".join(spec.render(self.procs) for spec in self.decls)
        body = "\n".join(phase.body for phase in self.phases)
        return (
            f"{decls}\n"
            f"void main() {{\n"
            f"{self.header}\n"
            f"{body}\n"
            f"}}\n"
        )

    @property
    def min_procs(self) -> int:
        return max([phase.min_procs for phase in self.phases], default=1)

    def subset(self, indices: Sequence[int]) -> "GeneratedProgram":
        """The program restricted to the given phase indices.

        Any subset of phases remains valid and (for deterministic
        profiles) deterministic: each phase writes only arrays it
        declares, so a dropped phase leaves its arrays at their initial
        zeros for every reader.  Declarations are all kept.
        """
        kept = tuple(self.phases[i] for i in sorted(set(indices)))
        return replace(self, phases=kept)

    def with_procs(self, procs: int) -> "GeneratedProgram":
        """The same phases re-rendered for a smaller machine."""
        if procs < self.min_procs:
            raise ValueError(
                f"phases require >= {self.min_procs} procs, got {procs}"
            )
        return replace(self, procs=procs)


class ProgramBuilder:
    """Accumulates declaration and phase specs for one random program."""

    def __init__(self, seed: int, procs: int, unroll: bool = False):
        self.rng = random.Random(seed)
        self.procs = procs
        self.unroll = unroll
        self.arrays: List[str] = []
        self.decls: List[DeclSpec] = []
        self.phases: List[Phase] = []
        self.flag_count = 0
        self.lock_count = 0
        self.scalar_count = 0

    # -- declarations -----------------------------------------------------

    def new_array(self) -> str:
        name = f"V{len(self.arrays)}"
        self.arrays.append(name)
        self.decls.append(DeclSpec(name, "array"))
        return name

    def new_scalar(self) -> str:
        name = f"S{self.scalar_count}"
        self.scalar_count += 1
        self.decls.append(DeclSpec(name, "scalar"))
        return name

    def new_flags(self) -> str:
        name = f"f{self.flag_count}"
        self.flag_count += 1
        self.decls.append(DeclSpec(name, "flags"))
        return name

    def new_lock(self) -> str:
        name = f"lk{self.lock_count}"
        self.lock_count += 1
        self.decls.append(DeclSpec(name, "lock"))
        return name

    # -- loop emission ----------------------------------------------------

    def _loop(self, template: Callable[[str], str],
              count: int = BLOCK, indent: str = "  ") -> str:
        """A for-loop over ``i`` — or its unrolling when straight-line
        code is requested (uid-sorted traces stay in source order)."""
        if not self.unroll:
            return (
                f"{indent}for (i = 0; i < {count}; i = i + 1) {{\n"
                f"{indent}  {template('i')}\n"
                f"{indent}}}"
            )
        return "\n".join(
            f"{indent}{template(str(i))}" for i in range(count)
        )

    # -- phases -----------------------------------------------------------

    def phase_write_own(self) -> None:
        var = self.new_array()
        a = self.rng.randint(1, 5)
        b = self.rng.randint(0, 9)
        body = self._loop(
            lambda i: f"{var}[base + {i}] = {a}.0 * (base + {i}) + {b}.0;"
        )
        self.phases.append(Phase("write_own", f"{body}\n  barrier();"))

    def phase_gather_neighbor(self) -> None:
        if not self.arrays:
            self.phase_write_own()
        src = self.rng.choice(self.arrays)
        dst = self.new_array()
        shift = self.rng.randint(1, self.procs - 1) if self.procs > 1 else 0
        scale = self.rng.randint(1, 3)
        fetch = self._loop(
            lambda i: f"buf[{i}] = {src}[nb * {BLOCK} + {i}];"
        )
        use = self._loop(
            lambda i: f"{dst}[base + {i}] = buf[{i}] * {scale}.0 + 1.0;"
        )
        self.phases.append(Phase(
            "gather",
            f"  nb = (MYPROC + {shift}) % PROCS;\n"
            f"{fetch}\n"
            f"  barrier();\n"
            f"{use}\n"
            f"  barrier();",
        ))

    def phase_scalar_broadcast(self) -> None:
        scalar = self.new_scalar()
        dst = self.new_array()
        value = self.rng.randint(1, 20)
        fanout = self._loop(
            lambda i: f"{dst}[base + {i}] = tmp + 1.0 * {i};"
        )
        self.phases.append(Phase(
            "scalar_broadcast",
            f"  if (MYPROC == 0) {{ {scalar} = {value}.0; }}\n"
            f"  barrier();\n"
            f"  tmp = {scalar};\n"
            f"{fanout}\n"
            f"  barrier();",
        ))

    def phase_lock_accumulate(self) -> None:
        lock = self.new_lock()
        scalar = self.new_scalar()
        rounds = self.rng.randint(1, 2)
        critical = (
            f"lock({lock});\n"
            f"    {scalar} = {scalar} + 1.0 * MYPROC + 1.0;\n"
            f"    unlock({lock});"
        )
        if self.unroll:
            critical = critical.replace("\n    ", "\n  ")
            body = "\n".join(f"  {critical}" for _ in range(rounds))
        else:
            body = (
                f"  for (i = 0; i < {rounds}; i = i + 1) {{\n"
                f"    {critical}\n"
                f"  }}"
            )
        self.phases.append(Phase(
            "lock_accumulate", f"{body}\n  barrier();"
        ))

    def phase_post_wait_ring(self) -> None:
        flags = self.new_flags()
        src = self.new_array()
        dst = self.new_array()
        offset = self.rng.randint(0, 4)
        fill = self._loop(
            lambda i: f"{src}[base + {i}] = 1.0 * (base + {i}) + {offset}.0;"
        )
        consume = self._loop(
            lambda i: f"{dst}[base + {i}] = {src}[nb * {BLOCK} + {i}] * 2.0;"
        )
        self.phases.append(Phase(
            "post_wait_ring",
            f"  nb = (MYPROC + 1) % PROCS;\n"
            f"{fill}\n"
            f"  post({flags}[MYPROC]);\n"
            f"  wait({flags}[nb]);\n"
            f"{consume}\n"
            f"  barrier();",
        ))

    def phase_misaligned_barrier(self) -> None:
        """Barriers on both arms of a conditional: dynamically aligned
        (every processor crosses two episodes), statically misaligned
        (different blocks) — stresses the §5.2 barrier-phase analysis.
        """
        src = self.new_array()
        dst = self.new_array()
        writer = self.rng.randrange(self.procs)
        a = self.rng.randint(1, 5)
        fill = self._loop(
            lambda i: f"{src}[base + {i}] = {a}.0 * (base + {i});",
            indent="    ",
        )
        mark = self._loop(
            lambda i: f"{dst}[base + {i}] = {a}.0;", indent="    "
        )
        consume = self._loop(
            lambda i: (
                f"{dst}[base + {i}] = "
                f"{src}[{writer} * {BLOCK} + {i}] + 1.0;"
            ),
            indent="    ",
        )
        self.phases.append(Phase(
            "misaligned_barrier",
            f"  if (MYPROC == {writer}) {{\n"
            f"{fill}\n"
            f"    barrier();\n"
            f"{mark}\n"
            f"    barrier();\n"
            f"  }} else {{\n"
            f"    barrier();\n"
            f"{consume}\n"
            f"    barrier();\n"
            f"  }}",
            min_procs=writer + 1,
        ))

    #: The historical phase mix (kept in this order so ``generate``
    #: reproduces the exact seed->program mapping of the original
    #: tests/properties generator).
    PHASES = (
        phase_write_own,
        phase_gather_neighbor,
        phase_scalar_broadcast,
        phase_lock_accumulate,
        phase_post_wait_ring,
    )

    def build(self, num_phases: int,
              mix: Sequence[Callable] = PHASES) -> List[Phase]:
        for _ in range(num_phases):
            phase_fn = self.rng.choice(mix)
            phase_fn(self)
        return self.phases


def _build_racy(seed: int, procs: int) -> Tuple[List[DeclSpec],
                                                List[Phase]]:
    """Guarded straight-line access mixes with genuine races.

    Every processor gets a few reads/writes of shared scalars homed on
    different processors (arrays of extent ``procs``, element p on
    processor p), with no synchronization at all — maximal race
    exposure, bounded trace size.
    """
    rng = random.Random(seed)
    names = ("U", "V", "W")
    decls = [DeclSpec(name, "int_array") for name in names]
    phases = []
    for p in range(procs):
        body = []
        min_procs = p + 1
        for _ in range(rng.randint(1, 3)):
            var = rng.choice(names)
            element = rng.randrange(procs)
            min_procs = max(min_procs, element + 1)
            if rng.random() < 0.5:
                value = rng.randint(1, 9)
                body.append(f"    {var}[{element}] = {value};")
            else:
                body.append(f"    t = {var}[{element}];")
        phases.append(Phase(
            "racy_guard",
            f"  if (MYPROC == {p}) {{\n"
            + "\n".join(body)
            + "\n  }",
            min_procs=min_procs,
        ))
    return decls, phases


@dataclass(frozen=True)
class Profile:
    """A generation profile: phase mix plus rendering options."""

    name: str
    description: str
    deterministic: bool
    straight_line: bool
    #: Builder phase mix (duplicates weight the choice); None = racy.
    mix: Tuple[Callable, ...] = ()
    #: Run the program under lossy-network schedules too: the campaign
    #: adds fault-plan schedules and the snapshot oracle then asserts
    #: fault-free and lossy runs agree (reliability-protocol fuzzing).
    faulty: bool = False
    #: Run the program under TSO/PSO store-buffer schedules too: the
    #: campaign adds weak-memory schedules and the snapshot oracle then
    #: asserts SC and relaxed runs agree — the robustness oracle (the
    #: compiled delays make relaxed executions sequentially consistent).
    weak: bool = False

    def generate(self, seed: int, procs: int,
                 num_phases: int) -> GeneratedProgram:
        if not self.mix:  # racy
            decls, phases = _build_racy(seed, procs)
            return GeneratedProgram(
                seed=seed, profile=self.name, procs=procs,
                decls=tuple(decls), phases=tuple(phases),
                header=_RACY_HEADER, deterministic=False,
                straight_line=True,
            )
        builder = ProgramBuilder(
            seed, procs, unroll=self.straight_line
        )
        phases = builder.build(num_phases, self.mix)
        return GeneratedProgram(
            seed=seed, profile=self.name, procs=procs,
            decls=tuple(builder.decls), phases=tuple(phases),
            header=_DET_HEADER, deterministic=self.deterministic,
            straight_line=self.straight_line,
        )


_B = ProgramBuilder

PROFILES: Dict[str, Profile] = {
    "mixed": Profile(
        "mixed",
        "the historical uniform phase mix (loops kept)",
        deterministic=True, straight_line=False,
        mix=_B.PHASES,
    ),
    "sync_heavy": Profile(
        "sync_heavy",
        "post/wait rings and owner broadcasts dominate; unrolled",
        deterministic=True, straight_line=True,
        mix=(
            _B.phase_post_wait_ring, _B.phase_post_wait_ring,
            _B.phase_post_wait_ring, _B.phase_scalar_broadcast,
            _B.phase_scalar_broadcast, _B.phase_write_own,
        ),
    ),
    "lock_heavy": Profile(
        "lock_heavy",
        "lock-guarded commutative accumulation dominates; unrolled",
        deterministic=True, straight_line=True,
        mix=(
            _B.phase_lock_accumulate, _B.phase_lock_accumulate,
            _B.phase_lock_accumulate, _B.phase_write_own,
            _B.phase_gather_neighbor,
        ),
    ),
    "barrier_misaligned": Profile(
        "barrier_misaligned",
        "statically misaligned (conditional) barriers; unrolled",
        deterministic=True, straight_line=True,
        mix=(
            _B.phase_misaligned_barrier, _B.phase_misaligned_barrier,
            _B.phase_write_own, _B.phase_gather_neighbor,
        ),
    ),
    "racy": Profile(
        "racy",
        "unsynchronized conflicting accesses, tiny SC-checkable traces",
        deterministic=False, straight_line=True,
    ),
    "faulty": Profile(
        "faulty",
        "the mixed phase set replayed over a lossy network: dropped/"
        "duplicated/delayed messages behind the retransmission protocol",
        deterministic=True, straight_line=False,
        mix=_B.PHASES,
        faulty=True,
    ),
    "weak_memory": Profile(
        "weak_memory",
        "the mixed phase set replayed under TSO/PSO store buffers: the "
        "robustness oracle asserts SC and relaxed snapshots agree",
        deterministic=True, straight_line=False,
        mix=_B.PHASES,
        weak=True,
    ),
}


def generate_program(
    seed: int,
    profile: str = "mixed",
    procs: int = 4,
    num_phases: int = 4,
) -> GeneratedProgram:
    """A structured random program for (seed, profile)."""
    try:
        spec = PROFILES[profile]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(
            f"unknown fuzz profile {profile!r} (known: {known})"
        ) from None
    return spec.generate(seed, procs, num_phases)


def generate(seed: int, procs: int = 4, num_phases: int = 4) -> str:
    """A random deterministic SPMD program for the given seed.

    Byte-compatible with the original ``tests/properties/progen``
    generator: same seed, same program.
    """
    return generate_program(seed, "mixed", procs, num_phases).source


def generate_racy(seed: int, procs: int = 3) -> str:
    """A small racy SPMD program (tiny, SC-checkable traces)."""
    return generate_program(seed, "racy", procs).source
