"""Differential-testing oracles.

Three cross-checks, straight from the paper's contract:

* **snapshot agreement** — a deterministic-by-construction program must
  compute identical final shared memory at every optimization level,
  under every adversarial schedule (§7: the optimized program computes
  what the naive one does);
* **sequential consistency** — every execution trace must admit a legal
  total order (§3).  The exact checker is exponential, so traces the
  step limit rejects are *skipped* and counted, never silently passed;
* **delay-set monotonicity** — the synchronization-aware analysis may
  only remove delays relative to Shasha–Snir, modulo its own D1 sync
  anchors (§5: the refinement prunes the cycle search, it never needs
  new orderings).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.runtime.consistency import (
    StepLimitExceeded,
    is_sequentially_consistent,
)
from repro.runtime.trace import ExecutionTrace

#: Result classes for one SC trace check.
SC_OK = "ok"
SC_SKIP = "skip"
SC_VIOLATION = "violation"


@dataclass
class OracleFailure:
    """One differential-testing failure, ready for bundling."""

    #: "snapshot" | "sc" | "monotonicity" | "crash" | "weak_canary"
    oracle: str
    detail: str
    level: Optional[str] = None
    schedule: Optional[dict] = None
    trace_digest: Optional[str] = None
    #: True when the failing run executed the delay-stripped twin (the
    #: weak-memory robustness canary) rather than the real compile.
    stripped: bool = False

    def summary(self) -> str:
        where = f" at {self.level}" if self.level else ""
        twin = " (delay-stripped twin)" if self.stripped else ""
        return f"[{self.oracle}{where}{twin}] {self.detail}"


def trace_digest(trace: ExecutionTrace) -> str:
    """A stable digest of a trace's per-processor event streams."""
    digest = hashlib.sha256()
    for proc, events in enumerate(trace.per_proc):
        for event in events:
            digest.update(
                f"P{proc}:{event.op}:{event.location}:"
                f"{event.value};".encode()
            )
    return digest.hexdigest()


def compare_snapshots(
    reference: Dict[str, List[float]],
    snapshot: Dict[str, List[float]],
    tol: float = 1e-9,
) -> Optional[str]:
    """None when final memories agree, else a human-readable diff."""
    if reference.keys() != snapshot.keys():
        missing = sorted(reference.keys() ^ snapshot.keys())
        return f"snapshot variable sets differ: {missing}"
    for name in sorted(reference):
        ref_values, values = reference[name], snapshot[name]
        if len(ref_values) != len(values):
            return (
                f"{name}: extent {len(values)} != reference "
                f"{len(ref_values)}"
            )
        for index, (expect, got) in enumerate(zip(ref_values, values)):
            if abs(expect - got) > tol:
                return (
                    f"{name}[{index}] = {got!r}, reference {expect!r}"
                )
    return None


def check_trace_sc(
    trace: ExecutionTrace,
    straight_line: bool,
    step_limit: int,
) -> str:
    """SC_OK / SC_SKIP / SC_VIOLATION for one execution trace.

    For straight-line programs the per-processor uid sort recovers
    *source* program order, undoing split-phase initiation reordering —
    that is the order the paper's SC claim is about.  For loopy
    programs the uid sort is not meaningful, so only untransformed
    (issue-order == program-order) traces should be passed here.
    """
    ordered = trace.source_ordered() if straight_line else trace
    try:
        consistent = is_sequentially_consistent(
            ordered, step_limit=step_limit
        )
    except StepLimitExceeded:
        return SC_SKIP
    return SC_OK if consistent else SC_VIOLATION


def check_delay_monotonicity(sas_result, sync_result) -> Optional[str]:
    """None when SYNC ⊆ SAS ∪ D1 holds, else a description.

    ``sas_result``/``sync_result`` are :class:`AnalysisResult`-shaped:
    only ``delays_by_index`` (and ``d1`` on the sync side) are used.
    """
    allowed = sas_result.delays_by_index | sync_result.d1
    extra = sync_result.delays_by_index - allowed
    if not extra:
        return None
    sample = sorted(extra)[:5]
    return (
        f"sync analysis invented {len(extra)} delay(s) absent from "
        f"Shasha-Snir ∪ D1, e.g. {sample}"
    )


@dataclass
class ScTally:
    """Counts of SC checks by outcome (skips reported separately)."""

    checks: int = 0
    skips: int = 0
    violations: int = 0

    def record(self, outcome: str) -> None:
        self.checks += 1
        if outcome == SC_SKIP:
            self.skips += 1
        elif outcome == SC_VIOLATION:
            self.violations += 1

    def as_dict(self) -> Dict[str, int]:
        return {
            "checks": self.checks,
            "skips": self.skips,
            "violations": self.violations,
        }
