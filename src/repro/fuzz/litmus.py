"""Weak-memory litmus shapes as structured generated programs.

The classic two-processor store-buffer litmus tests, rendered in
MiniSplit over per-processor int arrays (element ``p`` of an extent-
``procs`` array is homed on processor ``p``, so a processor's write to
its own element goes through its store buffer while the other
processor's read crosses the network to the backing store):

* **SB** (store buffering) — each processor writes its own element
  then reads the other's.  ``R = [0, 0]`` is impossible under SC but
  reachable under both TSO and PSO: the reads overtake the buffered
  writes.  This is the campaign's canary — the delay-stripped twin
  must exhibit it, the delayed build must not.
* **MP** (message passing) — processor 0 writes data then a flag, both
  homed locally; processor 1 reads the flag then the data.
  ``flag seen ∧ data stale`` is impossible under TSO (one FIFO buffer
  drains data before flag) but reachable under PSO (per-location
  queues drain independently).
* **LB** (load buffering) — each processor reads the other's element
  *then* writes its own.  ``R = [1, 1]`` requires a load to see a
  write that program-order-follows the other load: impossible under
  SC, TSO *and* PSO, since store buffers never make writes visible
  early, only late.

Each shape is a :class:`GeneratedProgram`, so the campaign's oracles,
delta-debugging minimizer and repro bundles apply to it unchanged.
"""

from __future__ import annotations

from repro.fuzz.progen import DeclSpec, GeneratedProgram, Phase

_HEADER = "  int t;"


def _racy_program(name: str, decls, phases, procs: int) -> GeneratedProgram:
    return GeneratedProgram(
        seed=0,
        profile=name,
        procs=procs,
        decls=tuple(decls),
        phases=tuple(phases),
        header=_HEADER,
        deterministic=False,
        straight_line=True,
    )


def sb_program(procs: int = 2) -> GeneratedProgram:
    """Store buffering: ``R = [0, 0]`` is the non-SC outcome."""
    if procs < 2:
        raise ValueError("SB needs at least 2 processors")
    decls = [DeclSpec("X", "int_array"), DeclSpec("R", "int_array")]
    phases = [
        Phase(
            "sb",
            f"  if (MYPROC == {p}) {{\n"
            f"    X[{p}] = 1;\n"
            f"    t = X[{1 - p}];\n"
            f"    R[{p}] = t;\n"
            f"  }}",
            min_procs=2,
        )
        for p in range(2)
    ]
    return _racy_program("weak_memory", decls, phases, procs)


def mp_program(procs: int = 2) -> GeneratedProgram:
    """Message passing: flag seen but data stale is the PSO outcome."""
    if procs < 2:
        raise ValueError("MP needs at least 2 processors")
    decls = [
        DeclSpec("D", "int_array"),
        DeclSpec("F", "int_array"),
        DeclSpec("R", "int_array"),
    ]
    phases = [
        Phase(
            "mp_writer",
            "  if (MYPROC == 0) {\n"
            "    D[0] = 7;\n"
            "    F[0] = 1;\n"
            "  }",
            min_procs=1,
        ),
        Phase(
            "mp_reader",
            "  if (MYPROC == 1) {\n"
            "    t = F[0];\n"
            "    R[0] = t;\n"
            "    t = D[0];\n"
            "    R[1] = t;\n"
            "  }",
            min_procs=2,
        ),
    ]
    return _racy_program("weak_memory", decls, phases, procs)


def lb_program(procs: int = 2) -> GeneratedProgram:
    """Load buffering: ``R = [1, 1]`` stays impossible — store
    buffers delay visibility, they never provide it early."""
    if procs < 2:
        raise ValueError("LB needs at least 2 processors")
    decls = [
        DeclSpec("A", "int_array"),
        DeclSpec("B", "int_array"),
        DeclSpec("R", "int_array"),
    ]
    phases = [
        Phase(
            "lb",
            "  if (MYPROC == 0) {\n"
            "    t = A[1];\n"
            "    B[0] = 1;\n"
            "    R[0] = t;\n"
            "  }",
            min_procs=2,
        ),
        Phase(
            "lb",
            "  if (MYPROC == 1) {\n"
            "    t = B[0];\n"
            "    A[1] = 1;\n"
            "    R[1] = t;\n"
            "  }",
            min_procs=2,
        ),
    ]
    return _racy_program("weak_memory", decls, phases, procs)
