"""repro.fuzz — end-to-end differential fuzzing of the compiler.

The paper's claim is dynamic: the optimized, reordered program must be
*observably sequentially consistent* (§3, §7).  This package composes
the three ingredients the repo already has — a random SPMD program
generator, an adversarial-jitter machine simulator, and an exact SC
trace checker — into a sustained differential-testing campaign:

* :mod:`repro.fuzz.progen` generates seeded random MiniSplit programs
  under several stress profiles (sync-heavy, lock-heavy,
  barrier-misaligned, racy);
* :mod:`repro.fuzz.campaign` compiles each program at several
  optimization levels through the shared compile pool, runs every
  variant under N adversarial schedules, and cross-checks the
  :mod:`repro.fuzz.oracles`;
* on failure, :mod:`repro.fuzz.minimize` shrinks the program with
  delta debugging and :mod:`repro.fuzz.bundle` writes a self-contained
  repro bundle under ``fuzz-failures/``.

The CLI entry point is ``repro fuzz`` (see :mod:`repro.cli`); the
nightly CI campaign and the per-PR smoke both gate on its exit status.
"""

from repro.fuzz.campaign import (
    CampaignStats,
    FuzzConfig,
    LEVEL_NAMES,
    run_campaign,
)
from repro.fuzz.minimize import minimize_program
from repro.fuzz.oracles import OracleFailure
from repro.fuzz.progen import (
    PROFILES,
    GeneratedProgram,
    generate,
    generate_program,
    generate_racy,
)

__all__ = [
    "CampaignStats",
    "FuzzConfig",
    "GeneratedProgram",
    "LEVEL_NAMES",
    "OracleFailure",
    "PROFILES",
    "generate",
    "generate_program",
    "generate_racy",
    "minimize_program",
    "run_campaign",
]
