"""Epithelial cell simulation: phase-structured aggregation proxy.

The paper's epithelial application simulates cell aggregation (each
step a Navier–Stokes solver computes fluid flow over a grid).  We keep
the compiler-visible structure — per-step *gather / barrier / local
compute / scatter / barrier / absorb* phases over a distributed field —
and substitute a deterministic diffusion + contribution-scatter rule
for the solver (DESIGN.md records the substitution).  This kernel is
the one swept across processor counts for the paper's Figure 13.

Per step each processor:

1. gathers its right neighbor's concentration block (remote reads);
2. [barrier] computes new local concentrations with a small flop loop
   (the "solver");
3. scatters a contribution into the right neighbor's inbox (remote
   writes — converted to one-way stores at O3);
4. [barrier] absorbs its inbox and writes back.
"""

from __future__ import annotations

from typing import List

from repro.apps.base import App, Snapshot, assert_close

#: Field size, timesteps and solver flop count (sweep-friendly sizes).
CELLS = 64
STEPS = 2
FLOPS = 4


def source(procs: int) -> str:
    block = CELLS // procs
    return f"""
// Epithelial: diffusion + aggregation proxy, {CELLS} cells, {STEPS} steps.
shared double C[{CELLS}];
shared double X[{CELLS}];

void main() {{
  int t; int i; int r;
  int base = MYPROC * {block};
  int rbase = ((MYPROC + 1) % PROCS) * {block};
  double buf[{block}];
  double newc[{block}];
  double right;
  double acc;

  for (i = 0; i < {block}; i = i + 1) {{
    C[base + i] = 1.0 + 0.05 * (base + i);
    X[base + i] = 0.0;
  }}
  barrier();

  for (t = 0; t < {STEPS}; t = t + 1) {{
    // Gather the right neighbor's block.
    for (i = 0; i < {block}; i = i + 1) {{
      buf[i] = C[rbase + i];
    }}
    barrier();

    // "Solver": diffusion plus a small fixed flop loop per cell.
    for (i = 0; i < {block}; i = i + 1) {{
      if (i == {block} - 1) {{ right = buf[0]; }}
      else {{ right = C[base + i + 1]; }}
      acc = 0.5 * C[base + i] + 0.3 * right + 0.2 * buf[i];
      for (r = 0; r < {FLOPS}; r = r + 1) {{
        acc = acc * 0.9 + 0.01;
      }}
      newc[i] = acc;
    }}

    // Scatter a contribution into the right neighbor's inbox.
    for (i = 0; i < {block}; i = i + 1) {{
      X[rbase + i] = newc[i] * 0.125;
    }}
    barrier();

    // Absorb the inbox and write back.
    for (i = 0; i < {block}; i = i + 1) {{
      C[base + i] = newc[i] * 0.875 + X[base + i];
      X[base + i] = 0.0;
    }}
    barrier();
  }}
}}
"""


def reference(procs: int) -> List[float]:
    block = CELLS // procs
    field = [1.0 + 0.05 * i for i in range(CELLS)]
    for _t in range(STEPS):
        new = [0.0] * CELLS
        inbox = [0.0] * CELLS
        for p in range(procs):
            base = p * block
            rbase = ((p + 1) % procs) * block
            buf = [field[rbase + i] for i in range(block)]
            for i in range(block):
                right = buf[0] if i == block - 1 else field[base + i + 1]
                acc = 0.5 * field[base + i] + 0.3 * right + 0.2 * buf[i]
                for _r in range(FLOPS):
                    acc = acc * 0.9 + 0.01
                new[base + i] = acc
                inbox[rbase + i] = acc * 0.125
        field = [
            new[i] * 0.875 + inbox[i] for i in range(CELLS)
        ]
    return field


def check(snapshot: Snapshot, procs: int) -> None:
    expected = reference(procs)
    for i in range(CELLS):
        assert_close(snapshot["C"][i], expected[i], f"C[{i}]")


APP = App(
    name="epithelial",
    description="cell-aggregation proxy with gather/solve/scatter phases",
    sync_style="barriers",
    source=source,
    check=check,
    supported_procs=(1, 2, 4, 8, 16, 32),
)
