"""EM3D: leapfrog electromagnetic propagation over a ring of blocks.

EM3D (Culler et al.) alternates half-steps: electric-field nodes update
from neighboring magnetic-field nodes and vice versa.  Our ring-of-
blocks version keeps the structure that matters to the compiler: on
each half-step every processor *gathers a whole neighbor block* of the
other field (a burst of remote reads — the prime pipelining target),
crosses a barrier, and updates its own block locally.

The E-gather pulls from the right neighbor, the H-gather from the left,
so the two half-steps exercise both `(MYPROC+1)%PROCS` and
`(MYPROC+PROCS-1)%PROCS` index forms.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.apps.base import App, Snapshot, assert_close

#: Nodes per field (divisible by every supported procs) and timesteps.
NODES = 64
STEPS = 2


def source(procs: int) -> str:
    return _program(NODES, procs, STEPS)


def scaled_source(procs: int, block: int = 8, steps: int = 4) -> str:
    """Weak-scaled variant: ``block`` nodes *per processor*.

    The fixed-size :func:`source` divides ``NODES = 64`` across the
    processors, which caps the processor count at 32 and shrinks the
    per-processor work as the machine grows.  The runtime scaling
    bench (ROADMAP item 4) needs the opposite: constant work per
    processor as the count climbs to 1024, so the total problem grows
    with the machine (``block * procs`` nodes per field).
    """
    return _program(block * procs, procs, steps)


def _program(nodes: int, procs: int, steps: int) -> str:
    block = nodes // procs
    return f"""
// EM3D: bipartite E/H leapfrog, {nodes} nodes per field, {steps} steps.
shared double E[{nodes}];
shared double H[{nodes}];

void main() {{
  int t; int i;
  int base = MYPROC * {block};
  int rbase = ((MYPROC + 1) % PROCS) * {block};
  int lbase = ((MYPROC + PROCS - 1) % PROCS) * {block};
  double hbuf[{block}];
  double ebuf[{block}];
  double hn;
  double en;

  for (i = 0; i < {block}; i = i + 1) {{
    E[base + i] = 0.01 * (base + i);
    H[base + i] = 1.0 - 0.02 * (base + i);
  }}
  barrier();

  for (t = 0; t < {steps}; t = t + 1) {{
    // Half-step 1: E from the right neighbor's H block.
    for (i = 0; i < {block}; i = i + 1) {{
      hbuf[i] = H[rbase + i];
    }}
    barrier();
    for (i = 0; i < {block}; i = i + 1) {{
      if (i == {block} - 1) {{ hn = hbuf[0]; }}
      else {{ hn = hbuf[i + 1]; }}
      E[base + i] = 0.5 * E[base + i] + 0.3 * hbuf[i] + 0.2 * hn;
    }}
    barrier();

    // Half-step 2: H from the left neighbor's E block.
    for (i = 0; i < {block}; i = i + 1) {{
      ebuf[i] = E[lbase + i];
    }}
    barrier();
    for (i = 0; i < {block}; i = i + 1) {{
      if (i == 0) {{ en = ebuf[{block} - 1]; }}
      else {{ en = ebuf[i - 1]; }}
      H[base + i] = 0.5 * H[base + i] + 0.25 * ebuf[i] + 0.25 * en;
    }}
    barrier();
  }}
}}
"""


def reference(procs: int) -> Tuple[List[float], List[float]]:
    """E and H after STEPS leapfrog steps (pure Python model)."""
    return _reference(NODES, procs, STEPS)


def scaled_reference(procs: int, block: int = 8,
                     steps: int = 4) -> Tuple[List[float], List[float]]:
    """Reference model for :func:`scaled_source`."""
    return _reference(block * procs, procs, steps)


def _reference(nodes: int, procs: int,
               steps: int) -> Tuple[List[float], List[float]]:
    block = nodes // procs
    e = [0.01 * i for i in range(nodes)]
    h = [1.0 - 0.02 * i for i in range(nodes)]
    for _t in range(steps):
        new_e = list(e)
        for p in range(procs):
            base = p * block
            rbase = ((p + 1) % procs) * block
            hbuf = [h[rbase + i] for i in range(block)]
            for i in range(block):
                hn = hbuf[(i + 1) % block]
                new_e[base + i] = (
                    0.5 * e[base + i] + 0.3 * hbuf[i] + 0.2 * hn
                )
        e = new_e
        new_h = list(h)
        for p in range(procs):
            base = p * block
            lbase = ((p + procs - 1) % procs) * block
            ebuf = [e[lbase + i] for i in range(block)]
            for i in range(block):
                en = ebuf[(i - 1) % block]
                new_h[base + i] = (
                    0.5 * h[base + i] + 0.25 * ebuf[i] + 0.25 * en
                )
        h = new_h
    return e, h


def check(snapshot: Snapshot, procs: int) -> None:
    expected_e, expected_h = reference(procs)
    for i in range(NODES):
        assert_close(snapshot["E"][i], expected_e[i], f"E[{i}]")
        assert_close(snapshot["H"][i], expected_h[i], f"H[{i}]")


APP = App(
    name="em3d",
    description="bipartite E/H leapfrog over a ring of blocks",
    sync_style="barriers",
    source=source,
    check=check,
    supported_procs=(1, 2, 4, 8, 16, 32),
)
