"""EM3D: leapfrog electromagnetic propagation over a ring of blocks.

EM3D (Culler et al.) alternates half-steps: electric-field nodes update
from neighboring magnetic-field nodes and vice versa.  Our ring-of-
blocks version keeps the structure that matters to the compiler: on
each half-step every processor *gathers a whole neighbor block* of the
other field (a burst of remote reads — the prime pipelining target),
crosses a barrier, and updates its own block locally.

The E-gather pulls from the right neighbor, the H-gather from the left,
so the two half-steps exercise both `(MYPROC+1)%PROCS` and
`(MYPROC+PROCS-1)%PROCS` index forms.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.apps.base import App, Snapshot, assert_close

#: Nodes per field (divisible by every supported procs) and timesteps.
NODES = 64
STEPS = 2


def source(procs: int) -> str:
    block = NODES // procs
    return f"""
// EM3D: bipartite E/H leapfrog, {NODES} nodes per field, {STEPS} steps.
shared double E[{NODES}];
shared double H[{NODES}];

void main() {{
  int t; int i;
  int base = MYPROC * {block};
  int rbase = ((MYPROC + 1) % PROCS) * {block};
  int lbase = ((MYPROC + PROCS - 1) % PROCS) * {block};
  double hbuf[{block}];
  double ebuf[{block}];
  double hn;
  double en;

  for (i = 0; i < {block}; i = i + 1) {{
    E[base + i] = 0.01 * (base + i);
    H[base + i] = 1.0 - 0.02 * (base + i);
  }}
  barrier();

  for (t = 0; t < {STEPS}; t = t + 1) {{
    // Half-step 1: E from the right neighbor's H block.
    for (i = 0; i < {block}; i = i + 1) {{
      hbuf[i] = H[rbase + i];
    }}
    barrier();
    for (i = 0; i < {block}; i = i + 1) {{
      if (i == {block} - 1) {{ hn = hbuf[0]; }}
      else {{ hn = hbuf[i + 1]; }}
      E[base + i] = 0.5 * E[base + i] + 0.3 * hbuf[i] + 0.2 * hn;
    }}
    barrier();

    // Half-step 2: H from the left neighbor's E block.
    for (i = 0; i < {block}; i = i + 1) {{
      ebuf[i] = E[lbase + i];
    }}
    barrier();
    for (i = 0; i < {block}; i = i + 1) {{
      if (i == 0) {{ en = ebuf[{block} - 1]; }}
      else {{ en = ebuf[i - 1]; }}
      H[base + i] = 0.5 * H[base + i] + 0.25 * ebuf[i] + 0.25 * en;
    }}
    barrier();
  }}
}}
"""


def reference(procs: int) -> Tuple[List[float], List[float]]:
    """E and H after STEPS leapfrog steps (pure Python model)."""
    block = NODES // procs
    e = [0.01 * i for i in range(NODES)]
    h = [1.0 - 0.02 * i for i in range(NODES)]
    for _t in range(STEPS):
        new_e = list(e)
        for p in range(procs):
            base = p * block
            rbase = ((p + 1) % procs) * block
            hbuf = [h[rbase + i] for i in range(block)]
            for i in range(block):
                hn = hbuf[(i + 1) % block]
                new_e[base + i] = (
                    0.5 * e[base + i] + 0.3 * hbuf[i] + 0.2 * hn
                )
        e = new_e
        new_h = list(h)
        for p in range(procs):
            base = p * block
            lbase = ((p + procs - 1) % procs) * block
            ebuf = [e[lbase + i] for i in range(block)]
            for i in range(block):
                en = ebuf[(i - 1) % block]
                new_h[base + i] = (
                    0.5 * h[base + i] + 0.25 * ebuf[i] + 0.25 * en
                )
        h = new_h
    return e, h


def check(snapshot: Snapshot, procs: int) -> None:
    expected_e, expected_h = reference(procs)
    for i in range(NODES):
        assert_close(snapshot["E"][i], expected_e[i], f"E[{i}]")
        assert_close(snapshot["H"][i], expected_h[i], f"H[{i}]")


APP = App(
    name="em3d",
    description="bipartite E/H leapfrog over a ring of blocks",
    sync_style="barriers",
    source=source,
    check=check,
    supported_procs=(1, 2, 4, 8, 16, 32),
)
