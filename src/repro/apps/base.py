"""Common shape of the application kernels (§8 of the paper).

Each kernel is a MiniSplit source generator parameterized by the
processor count, together with a Python reference model used to check
that every optimization level computes the same answer.  The paper's
five applications and their synchronization idioms:

=========== ==================== =========================================
kernel      synchronization      substituted computation
=========== ==================== =========================================
ocean       barriers             2-D Jacobi-style stencil relaxation with
                                 neighbor boundary-row exchange (the
                                 SPLASH Ocean core is a stencil solver)
em3d        barriers             bipartite E/H leapfrog over a ring of
                                 blocks (Culler et al.'s EM3D structure)
epithelial  barriers             grid diffusion + cell-aggregation proxy
                                 for the Navier–Stokes/FFT step (same
                                 gather/compute/barrier phase shape)
cholesky    post/wait flags      column-oriented Cholesky factorization,
                                 producer-consumer on column flags
health      locks                hierarchical patient-queue simulation
                                 with lock-guarded hospital counters
=========== ==================== =========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

Snapshot = Dict[str, List[Union[int, float]]]


@dataclass(frozen=True)
class App:
    """One application kernel."""

    name: str
    description: str
    sync_style: str
    #: procs -> MiniSplit source text
    source: Callable[[int], str]
    #: (snapshot, procs) -> None; raises AssertionError on mismatch
    check: Optional[Callable[[Snapshot, int], None]] = None
    #: processor counts the generated sizes divide evenly by
    supported_procs: Sequence[int] = (1, 2, 4, 8, 16, 32)


def require_supported(app: App, procs: int) -> None:
    if procs not in app.supported_procs:
        raise ValueError(
            f"{app.name} supports procs in {tuple(app.supported_procs)}, "
            f"got {procs}"
        )


def assert_close(actual: float, expected: float, what: str,
                 tol: float = 1e-6) -> None:
    if abs(actual - expected) > tol * max(1.0, abs(expected)):
        raise AssertionError(
            f"{what}: got {actual!r}, expected {expected!r}"
        )
