"""Health: lock-guarded hierarchical service simulation.

The Presto Health benchmark simulates the Colombian health-care
system's hierarchical dispensing; exclusive access to the shared
hospital structures is lock-based (§8).  Our variant keeps the
compiler-relevant shape: every processor is a village generating
patients; admitting a patient means entering a hospital's critical
section (scalar lock), reading the shared queue count, appending the
patient's severity to the shared queue, and bumping the count.

The §5.3 payoff: inside a critical section the queue write and the
count write may overlap (lock-guarded peers cannot appear in a
back-path between them), whereas plain Shasha–Snir serializes every
access in the program against the lock traffic.

The queue order is timing-dependent (it depends on lock arrival
order), so the checker validates order-insensitive facts: final counts
and severity sums per hospital.
"""

from __future__ import annotations


from repro.apps.base import App, Snapshot, assert_close

#: Patients generated per village (processor).
PATIENTS = 4
#: Queue capacity: enough for every patient in one hospital.
MAX_PROCS = 32
QUEUE_CAP = MAX_PROCS * PATIENTS


def source(procs: int) -> str:
    return f"""
// Health: lock-guarded hospital queues, {PATIENTS} patients/village.
shared lock_t lock0;
shared lock_t lock1;
shared int count0;
shared int count1;
shared double queue0[{QUEUE_CAP}];
shared double queue1[{QUEUE_CAP}];
shared double totals[2];

void main() {{
  int v; int c; int i;
  double sev;
  double sum;

  for (v = 0; v < {PATIENTS}; v = v + 1) {{
    sev = 1.0 * MYPROC + 0.1 * v;
    if ((MYPROC + v) % 2 == 0) {{
      lock(lock0);
      c = count0;
      queue0[c] = sev;
      count0 = c + 1;
      unlock(lock0);
    }} else {{
      lock(lock1);
      c = count1;
      queue1[c] = sev;
      count1 = c + 1;
      unlock(lock1);
    }}
  }}
  barrier();

  // Hospital 0's and 1's totals, computed by the first two villages.
  if (MYPROC == 0) {{
    sum = 0.0;
    for (i = 0; i < count0; i = i + 1) {{ sum = sum + queue0[i]; }}
    totals[0] = sum;
  }}
  if (MYPROC == PROCS - 1) {{
    sum = 0.0;
    for (i = 0; i < count1; i = i + 1) {{ sum = sum + queue1[i]; }}
    totals[1] = sum;
  }}
  barrier();
}}
"""


def reference(procs: int):
    """Expected (count, severity sum) per hospital."""
    counts = [0, 0]
    sums = [0.0, 0.0]
    for proc in range(procs):
        for v in range(PATIENTS):
            hospital = (proc + v) % 2
            counts[hospital] += 1
            sums[hospital] += 1.0 * proc + 0.1 * v
    return counts, sums


def check(snapshot: Snapshot, procs: int) -> None:
    counts, sums = reference(procs)
    assert snapshot["count0"][0] == counts[0], (
        f"count0: {snapshot['count0'][0]} != {counts[0]}"
    )
    assert snapshot["count1"][0] == counts[1], (
        f"count1: {snapshot['count1'][0]} != {counts[1]}"
    )
    # The queue order is timing-dependent; the multiset is not.
    q0 = sorted(snapshot["queue0"][: counts[0]])
    q1 = sorted(snapshot["queue1"][: counts[1]])
    expected0 = sorted(
        1.0 * p + 0.1 * v
        for p in range(procs)
        for v in range(PATIENTS)
        if (p + v) % 2 == 0
    )
    expected1 = sorted(
        1.0 * p + 0.1 * v
        for p in range(procs)
        for v in range(PATIENTS)
        if (p + v) % 2 == 1
    )
    for got, want in zip(q0, expected0):
        assert_close(got, want, "queue0 entry")
    for got, want in zip(q1, expected1):
        assert_close(got, want, "queue1 entry")
    assert_close(snapshot["totals"][0], sums[0], "totals[0]")
    assert_close(snapshot["totals"][1], sums[1], "totals[1]")


APP = App(
    name="health",
    description="lock-guarded hierarchical patient-queue simulation",
    sync_style="locks",
    source=source,
    check=check,
    supported_procs=(2, 4, 8, 16, 32),
)
