"""The five application kernels of the paper's evaluation (§8).

Each kernel is a MiniSplit source generator plus a reference model; see
:mod:`repro.apps.base` for the shape and the substitution notes.
"""

from typing import Dict, List

from repro.apps.base import App, Snapshot
from repro.apps.cholesky import APP as CHOLESKY
from repro.apps.em3d import APP as EM3D
from repro.apps.epithelial import APP as EPITHELIAL
from repro.apps.health import APP as HEALTH
from repro.apps.ocean import APP as OCEAN

#: The paper's Figure 12 order.
ALL_APPS: List[App] = [OCEAN, EM3D, EPITHELIAL, CHOLESKY, HEALTH]

APPS: Dict[str, App] = {app.name: app for app in ALL_APPS}


def get_app(name: str) -> App:
    try:
        return APPS[name]
    except KeyError:
        known = ", ".join(sorted(APPS))
        raise KeyError(f"unknown app {name!r} (known: {known})") from None


__all__ = [
    "App",
    "Snapshot",
    "APPS",
    "ALL_APPS",
    "get_app",
    "OCEAN",
    "EM3D",
    "EPITHELIAL",
    "CHOLESKY",
    "HEALTH",
]
