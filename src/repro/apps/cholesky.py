"""Cholesky: producer-consumer factorization on post/wait flags.

The paper's Cholesky distributes a lower-triangular matrix
blocked-cyclically and synchronizes producer-consumer style with
post/wait flags on columns (§8).  Our column-cyclic variant keeps that
exact structure:

* each processor owns the columns ``k % PROCS == MYPROC`` and keeps
  its working set in *local* memory;
* when column ``k`` is finalized its owner *publishes* it to the shared
  ``Cols`` array (a burst of remote writes) and posts ``done[k]``;
* every processor (owner included — posting then waiting on your own
  flag is the idiom that gives the §5.1 dominator rule its
  ``b2 dominates a2`` leg) waits on ``done[k]``, gathers the column
  (a burst of remote reads), and updates its own later columns locally.

The analysis story: the delays [publish, post] and [wait, gather] are
fundamental (they are in D1); the §5.1 refinement derives
``publish R gather`` through the post→wait edge, orients the conflict
edges, and thereby lets both the publish and the gather loops pipeline.
"""

from __future__ import annotations

import math
from typing import List

from repro.apps.base import App, Snapshot, assert_close

#: Matrix dimension (divides evenly over supported procs).
N = 12


def _matrix_entry(i: int, j: int) -> float:
    """A symmetric positive-definite test matrix."""
    return 1.0 / (1.0 + abs(i - j)) + (N if i == j else 0.0)


def source(procs: int) -> str:
    return f"""
// Cholesky: column-cyclic factorization with post/wait flags, N={N}.
shared double Cols[{N}][{N}];
shared flag_t done[{N}];

void main() {{
  int k; int i; int j;
  double L[{N}][{N}];
  double col[{N}];
  double piv;
  double entry;

  // Build my columns of the SPD input locally.
  for (j = 0; j < {N}; j = j + 1) {{
    if (j % PROCS == MYPROC) {{
      for (i = 0; i < {N}; i = i + 1) {{
        entry = 1.0 / (1.0 + abs(i - j));
        if (i == j) {{ entry = entry + {N}.0; }}
        L[i][j] = entry;
      }}
    }}
  }}

  for (k = 0; k < {N}; k = k + 1) {{
    if (k % PROCS == MYPROC) {{
      // Finalize and publish column k.
      piv = sqrt(L[k][k]);
      for (i = k; i < {N}; i = i + 1) {{
        Cols[i][k] = L[i][k] / piv;
      }}
      post(done[k]);
    }}
    wait(done[k]);

    // Gather the finalized column.
    for (i = k; i < {N}; i = i + 1) {{
      col[i] = Cols[i][k];
    }}

    // Update my remaining columns locally.
    for (j = k + 1; j < {N}; j = j + 1) {{
      if (j % PROCS == MYPROC) {{
        for (i = j; i < {N}; i = i + 1) {{
          L[i][j] = L[i][j] - col[i] * col[j];
        }}
      }}
    }}
  }}
}}
"""


def reference() -> List[List[float]]:
    """The Cholesky factor of the test matrix (pure Python)."""
    a = [[_matrix_entry(i, j) for j in range(N)] for i in range(N)]
    factor = [[0.0] * N for _ in range(N)]
    for k in range(N):
        piv = math.sqrt(a[k][k])
        for i in range(k, N):
            factor[i][k] = a[i][k] / piv
        for j in range(k + 1, N):
            for i in range(j, N):
                a[i][j] -= factor[i][k] * factor[j][k]
    return factor


def check(snapshot: Snapshot, procs: int) -> None:
    expected = reference()
    actual = snapshot["Cols"]
    for i in range(N):
        for k in range(i + 1):  # lower triangle only
            assert_close(
                actual[i * N + k], expected[i][k], f"Cols[{i}][{k}]",
                tol=1e-9,
            )


APP = App(
    name="cholesky",
    description="column-cyclic Cholesky with post/wait column flags",
    sync_style="post-wait",
    source=source,
    check=check,
    supported_procs=(1, 2, 3, 4, 6, 12),
)
