"""Ocean: barrier-synchronized stencil relaxation (SPLASH Ocean core).

The SPLASH Ocean benchmark studies eddy/boundary currents on a grid;
its core is a stencil computation over a row-distributed 2-D grid
(§8 of the paper).  Each step a processor

1. gathers its neighbors' boundary rows (remote reads — the pipelining
   target),
2. crosses a barrier (the gather must not race the previous step's
   writes),
3. relaxes its own rows in place with a 5-point stencil,
4. crosses a barrier again.

All writes are processor-local (block row distribution), so the win
here is pure read pipelining.
"""

from __future__ import annotations

from typing import List

from repro.apps.base import App, Snapshot, assert_close

#: Grid dimensions and step count (divisible by every supported procs).
ROWS = 32
COLS = 8
STEPS = 3


def source(procs: int) -> str:
    return _program(ROWS, procs, STEPS)


def scaled_source(procs: int, rows_per: int = 4, steps: int = 3) -> str:
    """Weak-scaled variant: ``rows_per`` grid rows *per processor*.

    The fixed :func:`source` splits ``ROWS = 32`` across processors
    (capping at 32 procs); the runtime scaling bench grows the grid
    with the machine instead (``rows_per * procs`` rows), keeping the
    per-processor stencil work constant up to 1024 processors.
    """
    return _program(rows_per * procs, procs, steps)


def _program(rows: int, procs: int, steps: int) -> str:
    rows_per = rows // procs
    return f"""
// Ocean: 5-point stencil relaxation, {rows}x{COLS} grid, {steps} steps.
shared double G[{rows}][{COLS}];

void main() {{
  int t; int i; int j;
  int base = MYPROC * {rows_per};
  double up[{COLS}];
  double down[{COLS}];
  double newv[{rows_per}][{COLS}];
  double a; double b; double c; double d;

  // Initialize my row block.
  for (i = 0; i < {rows_per}; i = i + 1) {{
    for (j = 0; j < {COLS}; j = j + 1) {{
      G[base + i][j] = 1.0 * (base + i) + 0.1 * j;
    }}
  }}
  barrier();

  for (t = 0; t < {steps}; t = t + 1) {{
    // Gather boundary rows from the neighboring processors.
    if (MYPROC > 0) {{
      for (j = 0; j < {COLS}; j = j + 1) {{ up[j] = G[base - 1][j]; }}
    }} else {{
      for (j = 0; j < {COLS}; j = j + 1) {{ up[j] = 0.0; }}
    }}
    if (MYPROC < PROCS - 1) {{
      for (j = 0; j < {COLS}; j = j + 1) {{
        down[j] = G[base + {rows_per}][j];
      }}
    }} else {{
      for (j = 0; j < {COLS}; j = j + 1) {{ down[j] = 0.0; }}
    }}
    barrier();

    // 5-point relaxation into a private buffer, then write back.
    for (i = 0; i < {rows_per}; i = i + 1) {{
      for (j = 0; j < {COLS}; j = j + 1) {{
        if (i == 0) {{ a = up[j]; }}
        else {{ a = G[base + i - 1][j]; }}
        if (i == {rows_per} - 1) {{ b = down[j]; }}
        else {{ b = G[base + i + 1][j]; }}
        if (j == 0) {{ c = 0.0; }} else {{ c = G[base + i][j - 1]; }}
        if (j == {COLS} - 1) {{ d = 0.0; }}
        else {{ d = G[base + i][j + 1]; }}
        newv[i][j] = 0.25 * (a + b + c + d);
      }}
    }}
    for (i = 0; i < {rows_per}; i = i + 1) {{
      for (j = 0; j < {COLS}; j = j + 1) {{
        G[base + i][j] = newv[i][j];
      }}
    }}
    barrier();
  }}
}}
"""


def reference() -> List[List[float]]:
    """The grid after STEPS relaxations (pure Python reference model)."""
    return _reference(ROWS, STEPS)


def scaled_reference(procs: int, rows_per: int = 4,
                     steps: int = 3) -> List[List[float]]:
    """Reference model for :func:`scaled_source`."""
    return _reference(rows_per * procs, steps)


def _reference(rows: int, steps: int) -> List[List[float]]:
    grid = [
        [float(r) + 0.1 * c for c in range(COLS)] for r in range(rows)
    ]
    for _step in range(steps):
        def at(r: int, c: int) -> float:
            if 0 <= r < rows and 0 <= c < COLS:
                return grid[r][c]
            return 0.0

        grid = [
            [
                0.25 * (at(r - 1, c) + at(r + 1, c) + at(r, c - 1)
                        + at(r, c + 1))
                for c in range(COLS)
            ]
            for r in range(rows)
        ]
    return grid


def check(snapshot: Snapshot, procs: int) -> None:
    expected = reference()
    actual = snapshot["G"]
    for r in range(ROWS):
        for c in range(COLS):
            assert_close(
                actual[r * COLS + c], expected[r][c], f"G[{r}][{c}]"
            )


APP = App(
    name="ocean",
    description="barrier-synchronized 5-point stencil relaxation",
    sync_style="barriers",
    source=source,
    check=check,
    supported_procs=(1, 2, 4, 8, 16, 32),
)
