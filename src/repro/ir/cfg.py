"""Control-flow graph: basic blocks, functions, modules.

A :class:`Function` owns an ordered list of basic blocks; the first is
the entry.  Every block ends in exactly one terminator (jump, branch or
ret).  :class:`Module` is a whole SPMD program: shared-variable
descriptors plus functions, with ``main`` as the SPMD entry point.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import CodegenError
from repro.ir.instructions import (
    Instr,
    LocalArray,
    Opcode,
    SharedVar,
    Temp,
)


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, label: str):
        self.label = label
        self.instrs: List[Instr] = []

    @property
    def terminator(self) -> Instr:
        if not self.instrs or not self.instrs[-1].is_terminator:
            raise CodegenError(f"block {self.label} has no terminator")
        return self.instrs[-1]

    @property
    def body(self) -> List[Instr]:
        """Instructions excluding the terminator."""
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[:-1]
        return list(self.instrs)

    def successors(self) -> List[str]:
        term = self.terminator
        if term.op is Opcode.JUMP:
            return [term.target]
        if term.op is Opcode.BRANCH:
            if term.true_target == term.false_target:
                return [term.true_target]
            return [term.true_target, term.false_target]
        return []

    def append(self, instr: Instr) -> None:
        if self.instrs and self.instrs[-1].is_terminator:
            raise CodegenError(
                f"appending {instr.op.value!r} after terminator in {self.label}"
            )
        self.instrs.append(instr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.label} ({len(self.instrs)} instrs)>"


class Function:
    """A function in CFG form."""

    def __init__(self, name: str, params: Optional[List[Temp]] = None,
                 returns_value: bool = False):
        self.name = name
        self.params: List[Temp] = list(params or [])
        self.returns_value = returns_value
        self.blocks: List[BasicBlock] = []
        self._blocks_by_label: Dict[str, BasicBlock] = {}
        self.local_arrays: Dict[str, LocalArray] = {}
        self._label_counter = itertools.count()
        self._temp_counter = itertools.count()

    # -- construction ---------------------------------------------------

    def new_block(self, hint: str = "bb") -> BasicBlock:
        label = f"{hint}{next(self._label_counter)}"
        block = BasicBlock(label)
        self.blocks.append(block)
        self._blocks_by_label[label] = block
        return block

    def adopt_block(self, block: BasicBlock) -> None:
        """Adds an externally-created block (used by the inliner)."""
        if block.label in self._blocks_by_label:
            raise CodegenError(f"duplicate block label {block.label}")
        self.blocks.append(block)
        self._blocks_by_label[block.label] = block

    def new_temp(self, hint: str = "t") -> Temp:
        return Temp(f"{hint}.{next(self._temp_counter)}")

    def fresh_label(self, hint: str = "bb") -> str:
        return f"{hint}{next(self._label_counter)}"

    # -- queries ----------------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise CodegenError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def block(self, label: str) -> BasicBlock:
        return self._blocks_by_label[label]

    def has_block(self, label: str) -> bool:
        return label in self._blocks_by_label

    def instructions(self) -> Iterator[Tuple[BasicBlock, int, Instr]]:
        """Yields (block, index, instr) over the whole function."""
        for block in self.blocks:
            for index, instr in enumerate(block.instrs):
                yield block, index, instr

    def find_instr(self, uid: int) -> Optional[Tuple[BasicBlock, int, Instr]]:
        for block, index, instr in self.instructions():
            if instr.uid == uid:
                return block, index, instr
        return None

    def predecessors(self) -> Dict[str, List[str]]:
        preds: Dict[str, List[str]] = {block.label: [] for block in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                preds[succ].append(block.label)
        return preds

    # -- maintenance ------------------------------------------------------

    def remove_unreachable_blocks(self) -> int:
        """Drops blocks not reachable from entry; returns count removed."""
        reachable: Set[str] = set()
        stack = [self.entry.label]
        while stack:
            label = stack.pop()
            if label in reachable:
                continue
            reachable.add(label)
            stack.extend(self.block(label).successors())
        removed = [b for b in self.blocks if b.label not in reachable]
        self.blocks = [b for b in self.blocks if b.label in reachable]
        for block in removed:
            del self._blocks_by_label[block.label]
        return len(removed)

    def verify(self) -> None:
        """Checks structural invariants; raises CodegenError on failure."""
        seen_labels: Set[str] = set()
        for block in self.blocks:
            if block.label in seen_labels:
                raise CodegenError(f"duplicate block {block.label}")
            seen_labels.add(block.label)
            if not block.instrs:
                raise CodegenError(f"empty block {block.label}")
            for instr in block.instrs[:-1]:
                if instr.is_terminator:
                    raise CodegenError(
                        f"terminator in the middle of block {block.label}"
                    )
            if not block.instrs[-1].is_terminator:
                raise CodegenError(f"block {block.label} lacks a terminator")
            for succ in block.successors():
                if succ not in self._blocks_by_label:
                    raise CodegenError(
                        f"block {block.label} jumps to unknown label {succ}"
                    )

    def __str__(self) -> str:
        lines = [f"func {self.name}({', '.join(str(p) for p in self.params)}):"]
        for array in self.local_arrays.values():
            dims = "".join(f"[{d}]" for d in array.dims)
            lines.append(f"  local {array.kind.value} {array.name}{dims}")
        for block in self.blocks:
            lines.append(f"{block.label}:")
            for instr in block.instrs:
                lines.append(f"  {instr}")
        return "\n".join(lines)


@dataclass
class Module:
    """A whole SPMD program in IR form."""

    shared_vars: Dict[str, SharedVar] = field(default_factory=dict)
    functions: Dict[str, Function] = field(default_factory=dict)

    @property
    def main(self) -> Function:
        return self.functions["main"]

    def shared(self, name: str) -> SharedVar:
        return self.shared_vars[name]

    def verify(self) -> None:
        for function in self.functions.values():
            function.verify()

    def __str__(self) -> str:
        parts = []
        for var in self.shared_vars.values():
            dims = "".join(f"[{d}]" for d in var.dims)
            parts.append(
                f"shared {var.kind.value} {var.name}{dims} "
                f"dist({var.distribution.value})"
            )
        for function in self.functions.values():
            parts.append(str(function))
        return "\n".join(parts)
