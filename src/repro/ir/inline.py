"""Function inlining.

The paper's analyses want one control-flow graph per SPMD program (§6:
"the input to the code generation phase is the control flow graph ...").
We therefore inline every call before analysis.  Recursion is rejected
with a diagnostic — the paper's source subset (scientific kernels) has
none, and cycle detection over recursive call graphs is out of scope.

Cloned instructions receive fresh uids; temps, labels, local arrays and
the symbolic index metadata are consistently renamed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import AnalysisError
from repro.ir.cfg import BasicBlock, Function, Module
from repro.ir.instructions import (
    IndexMeta,
    Instr,
    LocalArray,
    LoopRange,
    Opcode,
    Operand,
    Temp,
)


def _call_targets(function: Function) -> Set[str]:
    return {
        instr.callee
        for _b, _i, instr in function.instructions()
        if instr.op is Opcode.CALL
    }


def check_no_recursion(module: Module) -> List[str]:
    """Returns a reverse-topological ordering of the call graph.

    Raises :class:`AnalysisError` if the call graph has a cycle.
    """
    color: Dict[str, int] = {}  # 0 white, 1 grey, 2 black
    order: List[str] = []

    def visit(name: str, trail: List[str]) -> None:
        state = color.get(name, 0)
        if state == 1:
            cycle = " -> ".join(trail + [name])
            raise AnalysisError(f"recursive call cycle: {cycle}")
        if state == 2:
            return
        color[name] = 1
        function = module.functions.get(name)
        if function is not None:
            for callee in sorted(_call_targets(function)):
                visit(callee, trail + [name])
        color[name] = 2
        order.append(name)

    for name in module.functions:
        visit(name, [])
    return order


def _rename_operand(operand: Optional[Operand],
                    temp_map: Dict[str, Temp]) -> Optional[Operand]:
    if isinstance(operand, Temp) and operand.name in temp_map:
        return temp_map[operand.name]
    return operand


def _rename_meta(meta: Optional[IndexMeta],
                 name_map: Dict[str, str]) -> Optional[IndexMeta]:
    if meta is None:
        return None
    exprs = tuple(
        expr.rename_map(name_map) if expr is not None else None
        for expr in meta.exprs
    )
    loops = tuple(
        LoopRange(
            var=name_map.get(loop.var, loop.var),
            lo=loop.lo,
            hi=loop.hi,
            step=loop.step,
        )
        for loop in meta.loops
    )
    return IndexMeta(exprs=exprs, loops=loops, proc_guard=meta.proc_guard)


def _clone_instr(
    instr: Instr,
    temp_map: Dict[str, Temp],
    label_map: Dict[str, str],
    array_map: Dict[str, str],
    name_map: Dict[str, str],
) -> Instr:
    clone = instr.copy(fresh=True)
    clone.dest = _rename_operand(clone.dest, temp_map)
    clone.lhs = _rename_operand(clone.lhs, temp_map)
    clone.rhs = _rename_operand(clone.rhs, temp_map)
    clone.src = _rename_operand(clone.src, temp_map)
    clone.cond = _rename_operand(clone.cond, temp_map)
    clone.args = tuple(_rename_operand(a, temp_map) for a in clone.args)
    clone.indices = tuple(_rename_operand(i, temp_map) for i in clone.indices)
    clone.local_indices = tuple(
        _rename_operand(i, temp_map) for i in clone.local_indices
    )
    clone.index_meta = _rename_meta(clone.index_meta, name_map)
    if clone.op in (Opcode.LOAD_LOCAL, Opcode.STORE_LOCAL):
        clone.var = array_map.get(clone.var, clone.var)
    if clone.local_array is not None:
        clone.local_array = array_map.get(clone.local_array,
                                          clone.local_array)
    if clone.target is not None:
        clone.target = label_map.get(clone.target, clone.target)
    if clone.true_target is not None:
        clone.true_target = label_map.get(clone.true_target, clone.true_target)
    if clone.false_target is not None:
        clone.false_target = label_map.get(
            clone.false_target, clone.false_target
        )
    return clone


def _inline_call_site(
    caller: Function,
    block: BasicBlock,
    call_index: int,
    callee: Function,
) -> None:
    call = block.instrs[call_index]

    # Fresh names for everything the callee owns.
    temp_map: Dict[str, Temp] = {}
    for param in callee.params:
        temp_map[param.name] = caller.new_temp(f"inl.{param.name}")
    collected_temps: Set[str] = set()
    for _b, _i, instr in callee.instructions():
        defined = instr.defined_temp()
        if defined is not None:
            collected_temps.add(defined.name)
        for temp in instr.used_temps():
            collected_temps.add(temp.name)
    for name in sorted(collected_temps):
        if name in ("MYPROC", "PROCS") or name in temp_map:
            continue
        temp_map[name] = caller.new_temp(f"inl.{name}")
    name_map = {old: new.name for old, new in temp_map.items()}

    array_map: Dict[str, str] = {}
    for array in callee.local_arrays.values():
        fresh_name = f"{array.name}@{caller.fresh_label('inl')}"
        array_map[array.name] = fresh_name
        caller.local_arrays[fresh_name] = LocalArray(
            name=fresh_name, kind=array.kind, dims=array.dims
        )

    label_map: Dict[str, str] = {
        b.label: caller.fresh_label(f"inl_{b.label}_") for b in callee.blocks
    }
    cont_label = caller.fresh_label("cont")

    # Split the calling block: tail goes to the continuation block.
    tail = block.instrs[call_index + 1:]
    block.instrs = block.instrs[:call_index]
    for param, arg in zip(callee.params, call.args):
        block.instrs.append(
            Instr(Opcode.MOVE, dest=temp_map[param.name], src=arg,
                  location=call.location)
        )
    block.instrs.append(
        Instr(Opcode.JUMP, target=label_map[callee.entry.label])
    )

    cont = BasicBlock(cont_label)
    cont.instrs = tail
    caller.adopt_block(cont)

    for src_block in callee.blocks:
        clone = BasicBlock(label_map[src_block.label])
        for instr in src_block.instrs:
            if instr.op is Opcode.RET:
                if call.dest is not None:
                    result = _rename_operand(instr.src, temp_map)
                    if result is None:
                        result = Temp("__undef__")  # void-return misuse
                    clone.instrs.append(
                        Instr(Opcode.MOVE, dest=call.dest, src=result,
                              location=instr.location)
                    )
                clone.instrs.append(Instr(Opcode.JUMP, target=cont_label))
                break  # anything after ret in this block is dead
            clone.instrs.append(
                _clone_instr(instr, temp_map, label_map, array_map, name_map)
            )
        if not clone.instrs or not clone.instrs[-1].is_terminator:
            # Callee block ended with a non-ret terminator that was cloned
            # above, or was malformed; verify() will catch the latter.
            pass
        caller.adopt_block(clone)


def inline_all(module: Module) -> Module:
    """Inlines every call in every function, callees first (in place)."""
    order = check_no_recursion(module)
    for name in order:
        function = module.functions[name]
        # Repeat until no calls remain (each pass may expose none anyway
        # because callees are processed first, but a function can contain
        # several call sites).
        while True:
            site = None
            for block in function.blocks:
                for index, instr in enumerate(block.instrs):
                    if instr.op is Opcode.CALL:
                        site = (block, index, instr)
                        break
                if site is not None:
                    break
            if site is None:
                break
            block, index, call = site
            callee = module.functions[call.callee]
            _inline_call_site(function, block, index, callee)
        function.remove_unreachable_blocks()
        function.verify()
    return module
