"""Liveness analysis for temps.

Used by the redundant-get elimination pass (§7) to confirm that a value
fetched by an earlier ``get`` is still available (its temp has not been
clobbered) at a later access, and by tests as a standard consumer of the
backward-dataflow framework.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.ir.cfg import Function
from repro.ir.dataflow import BackwardDataflow, BlockSets


class Liveness:
    """Per-block and per-instruction live temp names."""

    def __init__(self, function: Function):
        self._function = function
        block_sets: Dict[str, BlockSets[str]] = {}
        for block in function.blocks:
            gen: Set[str] = set()
            kill: Set[str] = set()
            for instr in block.instrs:
                for temp in instr.used_temps():
                    if temp.name not in kill:
                        gen.add(temp.name)
                defined = instr.defined_temp()
                if defined is not None:
                    kill.add(defined.name)
            block_sets[block.label] = BlockSets(
                gen=frozenset(gen), kill=frozenset(kill)
            )
        self._flow = BackwardDataflow(function, block_sets)
        self._live_after: Dict[int, FrozenSet[str]] = {}
        self._compute_per_instruction()

    def _compute_per_instruction(self) -> None:
        for block in self._function.blocks:
            live = set(self._flow.block_out[block.label])
            for instr in reversed(block.instrs):
                self._live_after[instr.uid] = frozenset(live)
                defined = instr.defined_temp()
                if defined is not None:
                    live.discard(defined.name)
                for temp in instr.used_temps():
                    live.add(temp.name)

    def live_in(self, label: str) -> FrozenSet[str]:
        return self._flow.block_in[label]

    def live_out(self, label: str) -> FrozenSet[str]:
        return self._flow.block_out[label]

    def live_after(self, uid: int) -> FrozenSet[str]:
        """Temp names live immediately after the given instruction."""
        return self._live_after.get(uid, frozenset())
