"""A small generic iterative dataflow framework.

Used by reaching definitions (:mod:`repro.ir.defuse`) and liveness
(:mod:`repro.ir.liveness`).  Analyses are expressed as gen/kill bit-set
problems over basic blocks; instruction-level results are recovered by
replaying the block transfer function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Generic, Iterable, TypeVar

from repro.ir.cfg import Function

Fact = TypeVar("Fact")


@dataclass
class BlockSets(Generic[Fact]):
    """Per-block gen/kill sets for a bit-vector problem."""

    gen: FrozenSet[Fact]
    kill: FrozenSet[Fact]


class ForwardDataflow(Generic[Fact]):
    """Forward may/must analysis with union or intersection confluence."""

    def __init__(
        self,
        function: Function,
        block_sets: Dict[str, BlockSets[Fact]],
        universe: FrozenSet[Fact],
        may: bool = True,
        entry_fact: FrozenSet[Fact] = frozenset(),
    ):
        self._function = function
        self._sets = block_sets
        self._universe = universe
        self._may = may
        self._entry_fact = entry_fact
        self.block_in: Dict[str, FrozenSet[Fact]] = {}
        self.block_out: Dict[str, FrozenSet[Fact]] = {}
        self._solve()

    def _confluence(self, facts: Iterable[FrozenSet[Fact]]) -> FrozenSet[Fact]:
        facts = list(facts)
        if not facts:
            return self._entry_fact
        if self._may:
            result: FrozenSet[Fact] = frozenset()
            for fact in facts:
                result |= fact
            return result
        result = facts[0]
        for fact in facts[1:]:
            result &= fact
        return result

    def _solve(self) -> None:
        preds = self._function.predecessors()
        labels = [block.label for block in self._function.blocks]
        init = frozenset() if self._may else self._universe
        for label in labels:
            self.block_in[label] = init
            self.block_out[label] = init
        entry = self._function.entry.label
        self.block_in[entry] = self._entry_fact
        worklist = list(labels)
        while worklist:
            label = worklist.pop(0)
            if label == entry:
                in_fact = self._entry_fact
            else:
                in_fact = self._confluence(
                    self.block_out[p] for p in preds[label]
                )
            sets = self._sets[label]
            out_fact = (in_fact - sets.kill) | sets.gen
            self.block_in[label] = in_fact
            if out_fact != self.block_out[label]:
                self.block_out[label] = out_fact
                for succ in self._function.block(label).successors():
                    if succ not in worklist:
                        worklist.append(succ)


class BackwardDataflow(Generic[Fact]):
    """Backward may analysis (union confluence), e.g. liveness."""

    def __init__(
        self,
        function: Function,
        block_sets: Dict[str, BlockSets[Fact]],
    ):
        self._function = function
        self._sets = block_sets
        self.block_in: Dict[str, FrozenSet[Fact]] = {}
        self.block_out: Dict[str, FrozenSet[Fact]] = {}
        self._solve()

    def _solve(self) -> None:
        labels = [block.label for block in self._function.blocks]
        preds = self._function.predecessors()
        for label in labels:
            self.block_in[label] = frozenset()
            self.block_out[label] = frozenset()
        worklist = list(reversed(labels))
        while worklist:
            label = worklist.pop(0)
            out_fact: FrozenSet[Fact] = frozenset()
            for succ in self._function.block(label).successors():
                out_fact |= self.block_in[succ]
            sets = self._sets[label]
            in_fact = (out_fact - sets.kill) | sets.gen
            self.block_out[label] = out_fact
            if in_fact != self.block_in[label]:
                self.block_in[label] = in_fact
                for pred in preds[label]:
                    if pred not in worklist:
                        worklist.append(pred)
