"""Reaching definitions and def-use chains for temps.

Code generation (§6) moves ``sync_ctr`` operations and ``get``s past
other instructions; besides the delay set it must respect ordinary local
dependencies, which this module provides: for every instruction, the set
of definition sites whose values it may use, and for every definition,
the instructions that may use it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set, Tuple

from repro.ir.cfg import Function
from repro.ir.dataflow import BlockSets, ForwardDataflow
from repro.ir.instructions import Temp

#: A definition fact: (temp name, uid of the defining instruction).
DefFact = Tuple[str, int]

#: Pseudo-uid for "defined before entry" (parameters, MYPROC, PROCS).
ENTRY_DEF = 0


@dataclass
class DefUseInfo:
    """Reaching-definition and def-use results for one function."""

    #: instruction uid -> temp name -> set of defining uids reaching it
    reaching: Dict[int, Dict[str, FrozenSet[int]]] = field(default_factory=dict)
    #: defining uid -> set of instruction uids that may use the value
    uses: Dict[int, Set[int]] = field(default_factory=dict)

    def defs_reaching_use(self, use_uid: int, temp: Temp) -> FrozenSet[int]:
        return self.reaching.get(use_uid, {}).get(temp.name, frozenset())

    def users_of(self, def_uid: int) -> Set[int]:
        return self.uses.get(def_uid, set())


def compute_def_use(function: Function) -> DefUseInfo:
    """Computes reaching definitions and def-use chains for ``function``."""
    # Collect all definitions of each temp.
    defs_of_temp: Dict[str, Set[int]] = {}
    universe: Set[DefFact] = set()
    entry_temps = {param.name for param in function.params}
    entry_temps.update(("MYPROC", "PROCS"))
    for name in entry_temps:
        fact = (name, ENTRY_DEF)
        universe.add(fact)
        defs_of_temp.setdefault(name, set()).add(ENTRY_DEF)
    for _block, _index, instr in function.instructions():
        defined = instr.defined_temp()
        if defined is not None:
            fact = (defined.name, instr.uid)
            universe.add(fact)
            defs_of_temp.setdefault(defined.name, set()).add(instr.uid)

    # Per-block gen/kill.
    block_sets: Dict[str, BlockSets[DefFact]] = {}
    for block in function.blocks:
        gen: Dict[str, int] = {}
        for instr in block.instrs:
            defined = instr.defined_temp()
            if defined is not None:
                gen[defined.name] = instr.uid
        kill: Set[DefFact] = set()
        for name in gen:
            for def_uid in defs_of_temp.get(name, ()):
                kill.add((name, def_uid))
        block_sets[block.label] = BlockSets(
            gen=frozenset((name, uid) for name, uid in gen.items()),
            kill=frozenset(kill),
        )

    entry_fact = frozenset((name, ENTRY_DEF) for name in entry_temps)
    flow = ForwardDataflow(
        function, block_sets, frozenset(universe), may=True,
        entry_fact=entry_fact,
    )

    # Replay each block to get instruction-level reaching sets.
    info = DefUseInfo()
    for block in function.blocks:
        live: Dict[str, Set[int]] = {}
        for name, uid in flow.block_in[block.label]:
            live.setdefault(name, set()).add(uid)
        for instr in block.instrs:
            per_temp: Dict[str, FrozenSet[int]] = {}
            for temp in instr.used_temps():
                reaching = frozenset(live.get(temp.name, ()))
                per_temp[temp.name] = reaching
                for def_uid in reaching:
                    info.uses.setdefault(def_uid, set()).add(instr.uid)
            if per_temp:
                info.reaching[instr.uid] = per_temp
            defined = instr.defined_temp()
            if defined is not None:
                live[defined.name] = {instr.uid}
    return info
