"""Intermediate representation: instructions, CFG, and sequential analyses.

This package provides the standard compiler substrate the paper assumes
as input to its parallel analyses: a CFG per function, dominator trees,
reaching definitions / def-use chains, liveness, and function inlining.
"""

from repro.ir.cfg import BasicBlock, Function, Module
from repro.ir.defuse import DefUseInfo, compute_def_use
from repro.ir.dominators import DominatorTree, reverse_postorder
from repro.ir.inline import check_no_recursion, inline_all
from repro.ir.instructions import (
    MYPROC,
    PROCS,
    BinOpKind,
    Const,
    IndexMeta,
    Instr,
    LocalArray,
    LoopRange,
    Opcode,
    Operand,
    SharedVar,
    Temp,
    UnOpKind,
)
from repro.ir.liveness import Liveness
from repro.ir.lowering import lower_program

__all__ = [
    "BasicBlock",
    "Function",
    "Module",
    "Instr",
    "Opcode",
    "BinOpKind",
    "UnOpKind",
    "Temp",
    "Const",
    "Operand",
    "IndexMeta",
    "LoopRange",
    "SharedVar",
    "LocalArray",
    "MYPROC",
    "PROCS",
    "lower_program",
    "inline_all",
    "check_no_recursion",
    "DominatorTree",
    "reverse_postorder",
    "compute_def_use",
    "DefUseInfo",
    "Liveness",
]
