"""Index-metadata refinement: resolve single-assignment temps.

The lowering pass records index expressions symbolically, but a common
SPMD idiom hides the processor structure behind a local variable::

    int nb = (MYPROC + 1) % PROCS;
    ...
    E[nb * 64 + i] = ...;

The recorded form ``64*nb + i`` treats ``nb`` as an opaque symbol, which
makes the write self-conflict across processors — losing exactly the
precision the neighbor-exchange kernels need.  This pass resolves
symbols that name *single-assignment* temps by symbolically evaluating
their defining instruction chain, recognizing:

* constants, moves, ``+``/``-``/``*`` arithmetic;
* ``(MYPROC + c) % PROCS`` — the permutation form
  (:meth:`repro.analysis.symbolic.SymExpr.perm`).

Multi-assignment temps (loop variables, conditionally assigned values)
stay opaque symbols, which is always sound.  The pass rewrites
``IndexMeta`` in place and is idempotent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.symbolic import MYPROC_SYM, OPAQUE, SymExpr
from repro.ir.cfg import Function
from repro.ir.instructions import (
    BinOpKind,
    Const,
    IndexMeta,
    Instr,
    Opcode,
    Operand,
)


class _Resolver:
    """Memoized symbolic evaluation of single-assignment temps."""

    def __init__(self, function: Function):
        self._defs: Dict[str, List[Instr]] = {}
        for _block, _index, instr in function.instructions():
            defined = instr.defined_temp()
            if defined is not None:
                self._defs.setdefault(defined.name, []).append(instr)
        self._cache: Dict[str, SymExpr] = {}
        self._in_progress: Set[str] = set()

    def resolve_symbol(self, name: str) -> SymExpr:
        """The symbolic value of a temp; falls back to the symbol itself."""
        if name == MYPROC_SYM:
            return SymExpr.symbol(MYPROC_SYM)
        if name == "PROCS":
            return SymExpr.procs()
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        defs = self._defs.get(name, [])
        if len(defs) != 1 or name in self._in_progress:
            result = SymExpr.symbol(name)
        else:
            self._in_progress.add(name)
            resolved = self._eval_instr(defs[0])
            self._in_progress.discard(name)
            result = resolved if resolved is not None else SymExpr.symbol(name)
        self._cache[name] = result
        return result

    def _eval_operand(self, operand: Operand) -> Optional[SymExpr]:
        if isinstance(operand, Const):
            if isinstance(operand.value, int):
                return SymExpr.constant(operand.value)
            return None
        return self.resolve_symbol(operand.name)

    def _eval_instr(self, instr: Instr) -> Optional[SymExpr]:
        if instr.op is Opcode.CONST:
            if isinstance(instr.value, int):
                return SymExpr.constant(instr.value)
            return None
        if instr.op is Opcode.MOVE:
            return self._eval_operand(instr.src)
        if instr.op is Opcode.BINOP:
            left = self._eval_operand(instr.lhs)
            right = self._eval_operand(instr.rhs)
            if left is None or right is None:
                return None
            if instr.binop is BinOpKind.ADD:
                return left + right
            if instr.binop is BinOpKind.SUB:
                return left - right
            if instr.binop is BinOpKind.MUL:
                return left.multiply(right)
            if instr.binop is BinOpKind.MOD:
                return _eval_mod(left, right)
            return None
        return None


def _eval_mod(left: SymExpr, right: SymExpr) -> Optional[SymExpr]:
    """Recognizes ``(MYPROC + c) % PROCS`` and constant folds."""
    if left.is_constant and right.is_constant and right.const != 0:
        # C-style truncated remainder; operands here are non-negative in
        # well-formed index code, where it matches Python's %.
        return SymExpr.constant(left.const - (left.const // right.const)
                                * right.const)
    right_is_procs = (
        right.procs_const == 1
        and not right.terms
        and not right.procs_terms
        and not right.perm_terms
        and right.const == 0
    )
    if not right_is_procs:
        return None
    # left must be MYPROC + c (+ k*PROCS, which mod PROCS drops for the
    # non-negative operand values well-formed index code produces).
    if (
        left.terms == ((MYPROC_SYM, 1),)
        and not left.procs_terms
        and not left.perm_terms
    ):
        return SymExpr.perm(left.const)
    # (perm(c) + d) % PROCS with d == 0 is the perm itself.
    if (
        not left.terms
        and not left.procs_terms
        and left.procs_const == 0
        and len(left.perm_terms) == 1
        and left.const == 0
        and left.perm_terms[0][1] == 1
    ):
        return SymExpr.perm(left.perm_terms[0][0])
    return None


def _substitute(expr: SymExpr, resolver: _Resolver) -> SymExpr:
    """Rewrites an index form by resolving its symbols."""
    result = SymExpr.constant(expr.const)
    if expr.procs_const:
        result = result + SymExpr.procs().scale(expr.procs_const)
    for shift, coeff in expr.perm_terms:
        result = result + SymExpr.perm(shift).scale(coeff)
    for sym, coeff in expr.terms:
        resolved = resolver.resolve_symbol(sym)
        result = result + resolved.scale(coeff)
    for sym, coeff in expr.procs_terms:
        resolved = resolver.resolve_symbol(sym)
        scaled = resolved.scale(coeff).multiply(SymExpr.procs())
        if scaled is None:
            # Could not keep the PROCS scaling affine; keep the
            # original opaque-symbol term.
            result = result + SymExpr(procs_terms=((sym, coeff),))
        else:
            result = result + scaled
    return result


def refine_index_metadata(function: Function) -> int:
    """Refines every access's IndexMeta in place; returns a change count."""
    resolver = _Resolver(function)
    changed = 0
    for _block, _index, instr in function.instructions():
        meta = instr.index_meta
        if meta is None or not meta.exprs:
            continue
        new_exprs = []
        any_change = False
        for expr in meta.exprs:
            if expr is OPAQUE:
                new_exprs.append(expr)
                continue
            refined = _substitute(expr, resolver)
            if refined != expr:
                any_change = True
            new_exprs.append(refined)
        if any_change:
            instr.index_meta = IndexMeta(
                exprs=tuple(new_exprs),
                loops=meta.loops,
                proc_guard=meta.proc_guard,
            )
            changed += 1
    return changed
