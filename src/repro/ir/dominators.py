"""Dominator analysis.

Section 5.1's refinement algorithm (step 1) needs the dominator tree:
the precedence rule requires ``a1 dominates b1`` and ``b2 dominates a2``
so that the *dynamic* instances of the four accesses line up.  We use the
Cooper–Harvey–Kennedy iterative algorithm over a reverse-postorder
numbering, then extend block dominance to instruction granularity.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.cfg import Function


def reverse_postorder(function: Function) -> List[str]:
    """Block labels in reverse postorder from the entry."""
    visited = set()
    order: List[str] = []

    def visit(label: str) -> None:
        # Iterative DFS (deep CFGs would overflow Python's stack).
        stack = [(label, iter(function.block(label).successors()))]
        visited.add(label)
        while stack:
            current, successors = stack[-1]
            advanced = False
            for succ in successors:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(function.block(succ).successors())))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    visit(function.entry.label)
    order.reverse()
    return order


class DominatorTree:
    """Immediate dominators for every reachable block of a function."""

    def __init__(self, function: Function):
        self._function = function
        self._rpo = reverse_postorder(function)
        self._rpo_index: Dict[str, int] = {
            label: index for index, label in enumerate(self._rpo)
        }
        self.idom: Dict[str, Optional[str]] = {}
        self._compute()
        self._instr_positions: Dict[int, tuple] = {}
        for block in function.blocks:
            for index, instr in enumerate(block.instrs):
                self._instr_positions[instr.uid] = (block.label, index)

    def _compute(self) -> None:
        entry = self._function.entry.label
        preds = self._function.predecessors()
        idom: Dict[str, Optional[str]] = {label: None for label in self._rpo}
        idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for label in self._rpo:
                if label == entry:
                    continue
                candidates = [
                    p for p in preds[label]
                    if p in self._rpo_index and idom[p] is not None
                ]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for pred in candidates[1:]:
                    new_idom = self._intersect(new_idom, pred, idom)
                if idom[label] != new_idom:
                    idom[label] = new_idom
                    changed = True
        idom[entry] = None  # conventional: entry has no idom
        self.idom = idom

    def _intersect(
        self, a: str, b: str, idom: Dict[str, Optional[str]]
    ) -> str:
        index = self._rpo_index
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    # -- queries ---------------------------------------------------------

    def block_dominates(self, a: str, b: str) -> bool:
        """Does block ``a`` dominate block ``b`` (reflexive)?"""
        if a not in self._rpo_index or b not in self._rpo_index:
            return False
        current: Optional[str] = b
        while current is not None:
            if current == a:
                return True
            current = self.idom[current]
        return False

    def dominators_of(self, label: str) -> List[str]:
        """All dominators of ``label``, nearest first (includes itself)."""
        result = []
        current: Optional[str] = label
        while current is not None:
            result.append(current)
            current = self.idom[current]
        return result

    def instr_dominates(self, uid_a: int, uid_b: int) -> bool:
        """Does instruction ``a`` dominate instruction ``b``?

        Within a block this is program order (reflexive); across blocks
        it is strict block dominance.
        """
        pos_a = self._instr_positions.get(uid_a)
        pos_b = self._instr_positions.get(uid_b)
        if pos_a is None or pos_b is None:
            return False
        block_a, index_a = pos_a
        block_b, index_b = pos_b
        if block_a == block_b:
            return index_a <= index_b
        # Entering a dominating block executes all of it before control can
        # reach ``b``'s block, so block dominance suffices across blocks.
        return self.block_dominates(block_a, block_b)
