"""Lowering from the checked MiniSplit AST to the IR.

Beyond the usual expression/statement translation, lowering performs two
jobs for the parallel analyses:

* every shared access instruction gets :class:`~repro.ir.instructions.IndexMeta`
  — the access's index expressions in extended-affine symbolic form
  (:mod:`repro.analysis.symbolic`) plus the ranges of enclosing counted
  loops.  Local variable names are resolved to their unique temp names,
  so shadowing cannot confuse the conflict analysis.

* ``&&``/``||`` are lowered eagerly (both operands evaluated).  MiniSplit
  operands are side-effect-free apart from shared reads, and evaluating
  a shared read that C's short-circuiting would skip is always safe in
  this language (no traps), so the simpler lowering is semantically
  adequate; it also gives the analyses a single basic block to look at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import CodegenError
from repro.lang import ast
from repro.lang.checker import CheckedProgram
from repro.lang.types import ScalarKind
from repro.analysis.symbolic import MaybeSymExpr, OPAQUE, SymExpr
from repro.ir.cfg import BasicBlock, Function, Module
from repro.ir.instructions import (
    MYPROC,
    PROCS,
    BinOpKind,
    Const,
    IndexMeta,
    Instr,
    LocalArray,
    LoopRange,
    Opcode,
    Operand,
    SharedVar,
    Temp,
    UnOpKind,
)

_BINOP_MAP = {
    ast.BinaryOp.ADD: BinOpKind.ADD,
    ast.BinaryOp.SUB: BinOpKind.SUB,
    ast.BinaryOp.MUL: BinOpKind.MUL,
    ast.BinaryOp.DIV: BinOpKind.DIV,
    ast.BinaryOp.MOD: BinOpKind.MOD,
    ast.BinaryOp.EQ: BinOpKind.EQ,
    ast.BinaryOp.NE: BinOpKind.NE,
    ast.BinaryOp.LT: BinOpKind.LT,
    ast.BinaryOp.LE: BinOpKind.LE,
    ast.BinaryOp.GT: BinOpKind.GT,
    ast.BinaryOp.GE: BinOpKind.GE,
    ast.BinaryOp.AND: BinOpKind.AND,
    ast.BinaryOp.OR: BinOpKind.OR,
}


@dataclass
class _LoopRecord:
    """An enclosing counted loop while lowering its body."""

    var_sym: str
    lo: Optional[int]
    hi: Optional[int]
    step: int = 1
    invalidated: bool = False


class _ScopeMap:
    """Chained map from source names to lowering bindings."""

    def __init__(self, parent: Optional["_ScopeMap"] = None):
        self.parent = parent
        self._entries: Dict[str, object] = {}

    def bind(self, name: str, binding: object) -> None:
        self._entries[name] = binding

    def lookup(self, name: str) -> Optional[object]:
        scope: Optional[_ScopeMap] = self
        while scope is not None:
            if name in scope._entries:
                return scope._entries[name]
            scope = scope.parent
        return None


@dataclass
class _LocalBinding:
    temp: Temp
    #: symbolic value known from a dominating guard predicate, e.g.
    #: inside ``if (k % PROCS == MYPROC)`` the then-branch knows
    #: ``k = MYPROC + PROCS*m`` for some integer m >= 0.
    sym_override: Optional[SymExpr] = None


@dataclass
class _ArrayBinding:
    array: LocalArray


@dataclass
class _SharedBinding:
    var: SharedVar


class FunctionLowerer:
    """Lowers one function body into CFG form."""

    def __init__(self, checked: CheckedProgram, module: Module,
                 func: ast.FuncDecl):
        self._checked = checked
        self._module = module
        self._decl = func
        params = []
        self._function = Function(
            func.name,
            returns_value=func.return_type.kind is not ScalarKind.VOID,
        )
        self._root_scope = _ScopeMap()
        for name, var in module.shared_vars.items():
            self._root_scope.bind(name, _SharedBinding(var))
        self._scope = _ScopeMap(self._root_scope)
        for param in func.params:
            temp = self._function.new_temp(param.name)
            self._scope.bind(param.name, _LocalBinding(temp))
            params.append(temp)
        self._function.params = params
        self._current = self._function.new_block("entry")
        self._loops: List[_LoopRecord] = []
        self._proc_guards: List[int] = []
        #: loop-var temp name -> guard symbol standing in for it (the
        #: ownership-guard override: k = MYPROC + PROCS*g makes g an
        #: injective function of k, so g can represent k in the
        #: loop-iteration vector)
        self._loop_var_standins: Dict[str, str] = {}

    # -- helpers ----------------------------------------------------------

    def _emit(self, instr: Instr) -> Instr:
        self._current.append(instr)
        return instr

    def _terminate(self, instr: Instr) -> None:
        if self._current.instrs and self._current.instrs[-1].is_terminator:
            return  # dead code after return; drop extra terminator
        self._current.append(instr)

    def _jump(self, target: BasicBlock) -> None:
        self._terminate(Instr(Opcode.JUMP, target=target.label))

    def _index_meta(self, indices: List[ast.Expr],
                    scope: "_ScopeMap") -> IndexMeta:
        """Builds symbolic index metadata under the given scope/loops."""
        sym_exprs: Tuple[MaybeSymExpr, ...] = tuple(
            self._symbolic(expr, scope) for expr in indices
        )
        loops = []
        for record in self._loops:
            standin = self._loop_var_standins.get(record.var_sym)
            if standin is not None:
                # Inside the ownership guard the loop variable is
                # represented by the guard symbol (unbounded).
                loops.append(LoopRange(var=standin))
            else:
                loops.append(
                    LoopRange(
                        var=record.var_sym,
                        lo=None if record.invalidated else record.lo,
                        hi=None if record.invalidated else record.hi,
                        step=record.step,
                    )
                )
        loops = tuple(loops)
        guard = tuple(self._proc_guards) if self._proc_guards else None
        return IndexMeta(exprs=sym_exprs, loops=loops, proc_guard=guard)

    def _symbolic(self, expr: ast.Expr, scope: "_ScopeMap") -> MaybeSymExpr:
        """Translates an index AST to an extended affine form (or OPAQUE)."""
        if isinstance(expr, ast.IntLiteral):
            return SymExpr.constant(expr.value)
        if isinstance(expr, ast.MyProc):
            return SymExpr.symbol("MYPROC")
        if isinstance(expr, ast.NumProcs):
            return SymExpr.procs()
        if isinstance(expr, ast.VarRef):
            binding = scope.lookup(expr.name)
            if isinstance(binding, _LocalBinding):
                if binding.sym_override is not None:
                    return binding.sym_override
                return SymExpr.symbol(binding.temp.name)
            return OPAQUE
        if isinstance(expr, ast.Unary) and expr.op is ast.UnaryOp.NEG:
            inner = self._symbolic(expr.operand, scope)
            if inner is OPAQUE:
                return OPAQUE
            return -inner
        if isinstance(expr, ast.Binary):
            left = self._symbolic(expr.left, scope)
            right = self._symbolic(expr.right, scope)
            if left is OPAQUE or right is OPAQUE:
                return OPAQUE
            if expr.op is ast.BinaryOp.ADD:
                return left + right
            if expr.op is ast.BinaryOp.SUB:
                return left - right
            if expr.op is ast.BinaryOp.MUL:
                return left.multiply(right)
            return OPAQUE
        return OPAQUE

    def _const_value(self, expr: ast.Expr) -> Optional[int]:
        """Statically evaluates an int expression, if possible."""
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.Unary) and expr.op is ast.UnaryOp.NEG:
            inner = self._const_value(expr.operand)
            return None if inner is None else -inner
        if isinstance(expr, ast.Binary):
            left = self._const_value(expr.left)
            right = self._const_value(expr.right)
            if left is None or right is None:
                return None
            op = expr.op
            if op is ast.BinaryOp.ADD:
                return left + right
            if op is ast.BinaryOp.SUB:
                return left - right
            if op is ast.BinaryOp.MUL:
                return left * right
            if op is ast.BinaryOp.DIV and right != 0:
                return int(left / right)
            if op is ast.BinaryOp.MOD and right != 0:
                return left % right
        return None

    # -- entry point ---------------------------------------------------------

    def lower(self) -> Function:
        self._lower_block(self._decl.body, self._scope)
        self._terminate(Instr(Opcode.RET))
        self._function.remove_unreachable_blocks()
        self._function.verify()
        return self._function

    # -- statements -----------------------------------------------------------

    def _lower_block(self, block: ast.Block, parent: _ScopeMap) -> None:
        scope = _ScopeMap(parent)
        for stmt in block.statements:
            self._lower_statement(stmt, scope)

    def _lower_statement(self, stmt: ast.Stmt, scope: _ScopeMap) -> None:
        if isinstance(stmt, ast.Block):
            self._lower_block(stmt, scope)
        elif isinstance(stmt, ast.VarDecl):
            self._lower_var_decl(stmt, scope)
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt, scope)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt, scope)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt, scope)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt, scope)
        elif isinstance(stmt, ast.Barrier):
            self._emit(Instr(Opcode.BARRIER, location=stmt.location))
        elif isinstance(stmt, ast.Post):
            self._lower_sync(Opcode.POST, stmt.flag, scope, stmt)
        elif isinstance(stmt, ast.Wait):
            self._lower_sync(Opcode.WAIT, stmt.flag, scope, stmt)
        elif isinstance(stmt, ast.LockStmt):
            self._lower_sync(Opcode.LOCK, stmt.lock, scope, stmt)
        elif isinstance(stmt, ast.UnlockStmt):
            self._lower_sync(Opcode.UNLOCK, stmt.lock, scope, stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expression(stmt.expr, scope)
        elif isinstance(stmt, ast.Return):
            src = None
            if stmt.value is not None:
                src = self._lower_expression(stmt.value, scope)
            self._terminate(Instr(Opcode.RET, src=src, location=stmt.location))
            self._current = self._function.new_block("dead")
        else:  # pragma: no cover - defensive
            raise CodegenError(f"cannot lower {type(stmt).__name__}")

    def _lower_var_decl(self, decl: ast.VarDecl, scope: _ScopeMap) -> None:
        if decl.var_type.is_array:
            array = LocalArray(
                name=f"{decl.name}.{len(self._function.local_arrays)}",
                kind=decl.var_type.kind,
                dims=decl.var_type.dims,
            )
            self._function.local_arrays[array.name] = array
            scope.bind(decl.name, _ArrayBinding(array))
            return
        temp = self._function.new_temp(decl.name)
        scope.bind(decl.name, _LocalBinding(temp))
        if decl.init is not None:
            value = self._lower_expression(decl.init, scope)
            self._emit(Instr(Opcode.MOVE, dest=temp, src=value,
                             location=decl.location))
        else:
            self._emit(Instr(Opcode.CONST, dest=temp, value=0,
                             location=decl.location))

    def _invalidate_loops_for(self, temp: Temp) -> None:
        for record in self._loops:
            if record.var_sym == temp.name:
                record.invalidated = True

    def _lower_assign(self, stmt: ast.Assign, scope: _ScopeMap) -> None:
        target = stmt.target
        if isinstance(target, ast.VarRef):
            binding = scope.lookup(target.name)
            if isinstance(binding, _LocalBinding):
                value = self._lower_expression(stmt.value, scope)
                self._invalidate_loops_for(binding.temp)
                if binding.sym_override is not None:
                    # The guard fact no longer holds after reassignment.
                    scope.bind(target.name, _LocalBinding(binding.temp))
                self._emit(
                    Instr(Opcode.MOVE, dest=binding.temp, src=value,
                          location=stmt.location)
                )
                return
            if isinstance(binding, _SharedBinding):
                value = self._lower_expression(stmt.value, scope)
                self._emit(
                    Instr(
                        Opcode.WRITE_SHARED,
                        var=binding.var.name,
                        indices=(),
                        src=value,
                        index_meta=self._index_meta([], scope),
                        location=stmt.location,
                    )
                )
                return
            raise CodegenError(f"cannot assign to {target.name!r}")
        if isinstance(target, ast.IndexExpr):
            binding = scope.lookup(target.base.name)
            index_operands = tuple(
                self._lower_expression(index, scope) for index in target.indices
            )
            value = self._lower_expression(stmt.value, scope)
            if isinstance(binding, _ArrayBinding):
                self._emit(
                    Instr(
                        Opcode.STORE_LOCAL,
                        var=binding.array.name,
                        indices=index_operands,
                        src=value,
                        location=stmt.location,
                    )
                )
                return
            if isinstance(binding, _SharedBinding):
                self._emit(
                    Instr(
                        Opcode.WRITE_SHARED,
                        var=binding.var.name,
                        indices=index_operands,
                        src=value,
                        index_meta=self._index_meta(list(target.indices), scope),
                        location=stmt.location,
                    )
                )
                return
            raise CodegenError(f"cannot assign to {target.base.name!r}")
        raise CodegenError("bad assignment target")  # pragma: no cover

    def _lower_sync(
        self, op: Opcode, operand: ast.Expr, scope: _ScopeMap, stmt: ast.Stmt
    ) -> None:
        if isinstance(operand, ast.VarRef):
            name, indices = operand.name, []
        else:
            assert isinstance(operand, ast.IndexExpr)
            name, indices = operand.base.name, list(operand.indices)
        binding = scope.lookup(name)
        assert isinstance(binding, _SharedBinding)
        index_operands = tuple(
            self._lower_expression(index, scope) for index in indices
        )
        self._emit(
            Instr(
                op,
                var=binding.var.name,
                indices=index_operands,
                index_meta=self._index_meta(indices, scope),
                location=stmt.location,
            )
        )

    def _guarded_binding(
        self, condition: ast.Expr, scope: _ScopeMap
    ) -> Optional[Tuple[str, "_LocalBinding"]]:
        """Recognizes ``V % PROCS == MYPROC`` guards (either operand
        order).  Inside the then-branch the guarded variable is known to
        be ``MYPROC + PROCS*m`` for some integer m — the SPMD ownership
        idiom (``if (k % PROCS == MYPROC) ...``)."""
        if not isinstance(condition, ast.Binary):
            return None
        if condition.op is not ast.BinaryOp.EQ:
            return None
        sides = [condition.left, condition.right]
        for mod_side, proc_side in (sides, sides[::-1]):
            if not isinstance(proc_side, ast.MyProc):
                continue
            if not (
                isinstance(mod_side, ast.Binary)
                and mod_side.op is ast.BinaryOp.MOD
                and isinstance(mod_side.left, ast.VarRef)
                and isinstance(mod_side.right, ast.NumProcs)
            ):
                continue
            name = mod_side.left.name
            binding = scope.lookup(name)
            if not isinstance(binding, _LocalBinding):
                continue
            fresh = f"guard.{self._function.fresh_label('g')}"
            override = (
                SymExpr.symbol("MYPROC")
                + SymExpr.procs().multiply(SymExpr.symbol(fresh))
            )
            return name, _LocalBinding(binding.temp, override), fresh
        return None

    def _myproc_guard_constant(self, condition: ast.Expr) -> Optional[int]:
        """Recognizes ``MYPROC == <int const>`` guards (either order)."""
        if not isinstance(condition, ast.Binary):
            return None
        if condition.op is not ast.BinaryOp.EQ:
            return None
        for proc_side, const_side in (
            (condition.left, condition.right),
            (condition.right, condition.left),
        ):
            if isinstance(proc_side, ast.MyProc):
                value = self._const_value(const_side)
                if value is not None:
                    return value
        return None

    def _lower_if(self, stmt: ast.If, scope: _ScopeMap) -> None:
        cond = self._lower_expression(stmt.condition, scope)
        then_block = self._function.new_block("then")
        join_block = self._function.new_block("join")
        else_block = (
            self._function.new_block("else")
            if stmt.else_body is not None
            else join_block
        )
        self._terminate(
            Instr(
                Opcode.BRANCH,
                cond=cond,
                true_target=then_block.label,
                false_target=else_block.label,
                location=stmt.location,
            )
        )
        self._current = then_block
        then_scope = _ScopeMap(scope)
        guarded = self._guarded_binding(stmt.condition, scope)
        standin_key = None
        if guarded is not None:
            name, binding, fresh = guarded
            then_scope.bind(name, binding)
            standin_key = binding.temp.name
            self._loop_var_standins[standin_key] = fresh
        proc_guard = self._myproc_guard_constant(stmt.condition)
        if proc_guard is not None:
            self._proc_guards.append(proc_guard)
        self._lower_block(stmt.then_body, then_scope)
        if proc_guard is not None:
            self._proc_guards.pop()
        if standin_key is not None:
            del self._loop_var_standins[standin_key]
        self._jump(join_block)
        if stmt.else_body is not None:
            self._current = else_block
            self._lower_block(stmt.else_body, scope)
            self._jump(join_block)
        self._current = join_block

    def _lower_while(self, stmt: ast.While, scope: _ScopeMap) -> None:
        header = self._function.new_block("while_head")
        body = self._function.new_block("while_body")
        exit_block = self._function.new_block("while_exit")
        self._jump(header)
        self._current = header
        cond = self._lower_expression(stmt.condition, scope)
        self._terminate(
            Instr(
                Opcode.BRANCH,
                cond=cond,
                true_target=body.label,
                false_target=exit_block.label,
                location=stmt.location,
            )
        )
        self._current = body
        self._lower_block(stmt.body, scope)
        self._jump(header)
        self._current = exit_block

    def _recognize_counted_loop(
        self, stmt: ast.For, scope: _ScopeMap
    ) -> Optional[Tuple[str, Optional[int], Optional[int], int]]:
        """Matches ``for (i = E0; i < E1; i = i + c)`` shapes.

        Returns (source var name, lo, hi_exclusive, step) with None bounds
        when not statically constant.  Recognizing the shape lets the
        conflict analysis bound the loop variable; failing to match is
        always safe (the variable is just unbounded).
        """
        init_name: Optional[str] = None
        lo: Optional[int] = None
        if isinstance(stmt.init, ast.VarDecl) and not stmt.init.var_type.is_array:
            init_name = stmt.init.name
            if stmt.init.init is not None:
                lo = self._const_value(stmt.init.init)
        elif isinstance(stmt.init, ast.Assign) and isinstance(
            stmt.init.target, ast.VarRef
        ):
            init_name = stmt.init.target.name
            lo = self._const_value(stmt.init.value)
        if init_name is None:
            return None

        cond = stmt.condition
        hi: Optional[int] = None
        if (
            isinstance(cond, ast.Binary)
            and cond.op in (ast.BinaryOp.LT, ast.BinaryOp.LE)
            and isinstance(cond.left, ast.VarRef)
            and cond.left.name == init_name
        ):
            bound = self._const_value(cond.right)
            if bound is not None:
                hi = bound + 1 if cond.op is ast.BinaryOp.LE else bound
        else:
            return None

        step = stmt.step
        if (
            isinstance(step, ast.Assign)
            and isinstance(step.target, ast.VarRef)
            and step.target.name == init_name
            and isinstance(step.value, ast.Binary)
            and step.value.op is ast.BinaryOp.ADD
            and isinstance(step.value.left, ast.VarRef)
            and step.value.left.name == init_name
        ):
            increment = self._const_value(step.value.right)
            if increment is None or increment <= 0:
                return None
            return init_name, lo, hi, increment
        return None

    def _lower_for(self, stmt: ast.For, scope: _ScopeMap) -> None:
        inner = _ScopeMap(scope)
        counted = self._recognize_counted_loop(stmt, inner)
        if stmt.init is not None:
            self._lower_statement(stmt.init, inner)

        header = self._function.new_block("for_head")
        body = self._function.new_block("for_body")
        exit_block = self._function.new_block("for_exit")
        self._jump(header)
        self._current = header
        if stmt.condition is not None:
            cond = self._lower_expression(stmt.condition, inner)
            self._terminate(
                Instr(
                    Opcode.BRANCH,
                    cond=cond,
                    true_target=body.label,
                    false_target=exit_block.label,
                    location=stmt.location,
                )
            )
        else:
            self._jump(body)

        record: Optional[_LoopRecord] = None
        if counted is not None:
            var_name, lo, hi, step = counted
            binding = inner.lookup(var_name)
            if isinstance(binding, _LocalBinding):
                # hi is the exclusive bound: the loop variable stays in
                # [lo, hi - 1] inside the body.
                record = _LoopRecord(
                    var_sym=binding.temp.name,
                    lo=lo,
                    hi=None if hi is None else hi - 1,
                    step=step,
                )
                self._loops.append(record)

        self._current = body
        self._lower_block(stmt.body, inner)
        if record is not None:
            # The step assignment re-defines the loop variable; pop the
            # record first so the step itself does not invalidate it.
            self._loops.pop()
        if stmt.step is not None:
            self._lower_statement(stmt.step, inner)
        self._jump(header)
        self._current = exit_block

    # -- expressions --------------------------------------------------------

    def _lower_expression(self, expr: ast.Expr, scope: _ScopeMap) -> Operand:
        if isinstance(expr, ast.IntLiteral):
            return Const(expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return Const(expr.value)
        if isinstance(expr, ast.MyProc):
            return MYPROC
        if isinstance(expr, ast.NumProcs):
            return PROCS
        if isinstance(expr, ast.VarRef):
            binding = scope.lookup(expr.name)
            if isinstance(binding, _LocalBinding):
                return binding.temp
            if isinstance(binding, _SharedBinding):
                dest = self._function.new_temp("rd")
                self._emit(
                    Instr(
                        Opcode.READ_SHARED,
                        dest=dest,
                        var=binding.var.name,
                        indices=(),
                        index_meta=self._index_meta([], scope),
                        location=expr.location,
                    )
                )
                return dest
            raise CodegenError(f"cannot read {expr.name!r}")
        if isinstance(expr, ast.IndexExpr):
            binding = scope.lookup(expr.base.name)
            index_operands = tuple(
                self._lower_expression(index, scope) for index in expr.indices
            )
            dest = self._function.new_temp("rd")
            if isinstance(binding, _ArrayBinding):
                self._emit(
                    Instr(
                        Opcode.LOAD_LOCAL,
                        dest=dest,
                        var=binding.array.name,
                        indices=index_operands,
                        location=expr.location,
                    )
                )
                return dest
            if isinstance(binding, _SharedBinding):
                self._emit(
                    Instr(
                        Opcode.READ_SHARED,
                        dest=dest,
                        var=binding.var.name,
                        indices=index_operands,
                        index_meta=self._index_meta(list(expr.indices), scope),
                        location=expr.location,
                    )
                )
                return dest
            raise CodegenError(f"cannot index {expr.base.name!r}")
        if isinstance(expr, ast.Binary):
            lhs = self._lower_expression(expr.left, scope)
            rhs = self._lower_expression(expr.right, scope)
            dest = self._function.new_temp("t")
            self._emit(
                Instr(
                    Opcode.BINOP,
                    dest=dest,
                    binop=_BINOP_MAP[expr.op],
                    lhs=lhs,
                    rhs=rhs,
                    location=expr.location,
                )
            )
            return dest
        if isinstance(expr, ast.Unary):
            src = self._lower_expression(expr.operand, scope)
            dest = self._function.new_temp("t")
            unop = UnOpKind.NEG if expr.op is ast.UnaryOp.NEG else UnOpKind.NOT
            self._emit(
                Instr(Opcode.UNOP, dest=dest, unop=unop, src=src,
                      location=expr.location)
            )
            return dest
        if isinstance(expr, ast.Call):
            args = tuple(
                self._lower_expression(arg, scope) for arg in expr.args
            )
            from repro.lang.checker import INTRINSICS

            if expr.name in INTRINSICS:
                dest = self._function.new_temp("t")
                self._emit(
                    Instr(
                        Opcode.INTRINSIC,
                        dest=dest,
                        intrinsic=expr.name,
                        args=args,
                        location=expr.location,
                    )
                )
                return dest
            func = self._checked.functions[expr.name]
            dest = None
            if func.return_type.kind is not ScalarKind.VOID:
                dest = self._function.new_temp("t")
            self._emit(
                Instr(
                    Opcode.CALL,
                    dest=dest,
                    callee=expr.name,
                    args=args,
                    location=expr.location,
                )
            )
            return dest if dest is not None else Const(0)
        raise CodegenError(  # pragma: no cover - defensive
            f"cannot lower expression {type(expr).__name__}"
        )


def lower_program(checked: CheckedProgram) -> Module:
    """Lowers a checked program to an IR module."""
    module = Module()
    for decl in checked.program.shared_decls:
        module.shared_vars[decl.name] = SharedVar(
            name=decl.name,
            kind=decl.var_type.kind,
            dims=decl.var_type.dims,
            distribution=decl.distribution,
        )
    for func in checked.program.functions:
        module.functions[func.name] = FunctionLowerer(
            checked, module, func
        ).lower()
    module.verify()
    return module
