"""The repro intermediate representation (IR).

The IR is a conventional three-address, basic-block representation with
two extensions that matter to the paper:

* **Shared-memory access instructions** carry *symbolic index metadata*:
  the source-level index expressions and the ranges of the enclosing
  loop variables.  The conflict analysis (:mod:`repro.analysis.indexing`)
  uses this metadata to prove that two distributed-array accesses can
  never touch the same element from two different processors.

* **Split-phase instructions** (``GET``/``PUT``/``STORE``/``SYNC_CTR``/
  ``STORE_SYNC``) model Split-C's weak memory operations.  The frontend
  never produces them — only blocking ``READ_SHARED``/``WRITE_SHARED``
  appear after lowering, exactly as in the paper's source language; the
  optimizer introduces split-phase forms during code generation (§6).

Operands are either virtual registers (:class:`Temp`) or constants
(:class:`Const`).  The reserved temps ``MYPROC`` and ``PROCS`` hold the
processor id and processor count; the analyses treat them symbolically.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple, Union

from repro.errors import SourceLocation
from repro.lang.types import Distribution, ScalarKind

# ---------------------------------------------------------------------------
# Operands
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Temp:
    """A virtual register (also used for named local scalars)."""

    name: str

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Const:
    """An immediate int or double constant."""

    value: Union[int, float]

    def __str__(self) -> str:
        return str(self.value)


Operand = Union[Temp, Const]

#: Reserved temps every processor has pre-initialized.
MYPROC = Temp("MYPROC")
PROCS = Temp("PROCS")
RESERVED_TEMPS = (MYPROC, PROCS)


# ---------------------------------------------------------------------------
# Symbolic index metadata (consumed by the conflict analysis)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LoopRange:
    """The range of an enclosing counted loop variable.

    ``lo``/``hi`` are *inclusive* constant bounds when statically known,
    otherwise ``None`` (unbounded, treated conservatively).
    """

    var: str
    lo: Optional[int] = None
    hi: Optional[int] = None
    step: int = 1


@dataclass(frozen=True)
class IndexMeta:
    """Source-level index information attached to a shared access.

    ``exprs`` are the symbolic index expressions; ``loops`` are the
    enclosing loop-variable ranges, innermost last.  ``proc_guard`` is
    set when the access sits under an ``if (MYPROC == c)`` guard with a
    compile-time constant ``c`` — such an access executes on exactly one
    processor, so it can never cross-conflict with another access under
    the *same* guard.
    """

    exprs: Tuple[object, ...] = ()
    loops: Tuple[LoopRange, ...] = ()
    proc_guard: "Tuple[int, ...] | None" = None


# ---------------------------------------------------------------------------
# Opcodes
# ---------------------------------------------------------------------------


class Opcode(enum.Enum):
    # Local computation
    CONST = "const"
    MOVE = "move"
    BINOP = "binop"
    UNOP = "unop"
    INTRINSIC = "intrinsic"
    LOAD_LOCAL = "load_local"
    STORE_LOCAL = "store_local"

    # Blocking shared accesses (the source model, §2)
    READ_SHARED = "read_shared"
    WRITE_SHARED = "write_shared"

    # Split-phase operations (codegen output, §6)
    GET = "get"
    PUT = "put"
    STORE = "store"
    SYNC_CTR = "sync_ctr"
    STORE_SYNC = "store_sync"

    # Synchronization constructs (§5)
    POST = "post"
    WAIT = "wait"
    BARRIER = "barrier"
    LOCK = "lock"
    UNLOCK = "unlock"

    # Control flow
    JUMP = "jump"
    BRANCH = "branch"
    CALL = "call"
    RET = "ret"


class BinOpKind(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "&&"
    OR = "||"


class UnOpKind(enum.Enum):
    NEG = "-"
    NOT = "!"


#: Opcodes that denote accesses to the shared address space or
#: synchronization — the vocabulary of the parallel analyses.
SHARED_ACCESS_OPCODES = frozenset(
    {
        Opcode.READ_SHARED,
        Opcode.WRITE_SHARED,
        Opcode.GET,
        Opcode.PUT,
        Opcode.STORE,
    }
)

SYNC_OPCODES = frozenset(
    {Opcode.POST, Opcode.WAIT, Opcode.BARRIER, Opcode.LOCK, Opcode.UNLOCK}
)

TERMINATOR_OPCODES = frozenset({Opcode.JUMP, Opcode.BRANCH, Opcode.RET})


_uid_counter = itertools.count(1)


def fresh_uid() -> int:
    """Globally-unique instruction id (stable across CFG edits)."""
    return next(_uid_counter)


@dataclass
class Instr:
    """A single IR instruction.

    One dataclass covers all opcodes; unused fields stay at their
    defaults.  ``uid`` survives transformations that *replace* an
    instruction with an equivalent one (e.g. READ_SHARED -> GET keeps the
    uid so delay-set edges remain meaningful); transformations that
    *introduce* new work allocate fresh uids.
    """

    op: Opcode
    uid: int = field(default_factory=fresh_uid)
    location: Optional[SourceLocation] = None

    # Local computation fields
    dest: Optional[Temp] = None
    value: Optional[Union[int, float]] = None
    binop: Optional[BinOpKind] = None
    unop: Optional[UnOpKind] = None
    lhs: Optional[Operand] = None
    rhs: Optional[Operand] = None
    src: Optional[Operand] = None
    intrinsic: Optional[str] = None
    args: Tuple[Operand, ...] = ()

    # Shared / local array access fields
    var: Optional[str] = None  # shared variable or local array name
    indices: Tuple[Operand, ...] = ()
    index_meta: Optional[IndexMeta] = None

    # Split-phase fields
    counter: Optional[int] = None  # synchronizing counter id
    #: a fused get deposits directly into a local array element
    #: (Split-C's ``get_ctr(&buf[i], &V[j], c)`` shape) instead of a temp
    local_array: Optional[str] = None
    local_indices: Tuple[Operand, ...] = ()

    # Control flow fields
    target: Optional[str] = None
    true_target: Optional[str] = None
    false_target: Optional[str] = None
    cond: Optional[Operand] = None
    callee: Optional[str] = None

    # -- classification helpers -------------------------------------------

    @property
    def is_shared_access(self) -> bool:
        return self.op in SHARED_ACCESS_OPCODES

    @property
    def is_sync(self) -> bool:
        return self.op in SYNC_OPCODES

    @property
    def is_shared_read(self) -> bool:
        return self.op in (Opcode.READ_SHARED, Opcode.GET)

    @property
    def is_shared_write(self) -> bool:
        return self.op in (Opcode.WRITE_SHARED, Opcode.PUT, Opcode.STORE)

    @property
    def is_terminator(self) -> bool:
        return self.op in TERMINATOR_OPCODES

    def copy(self, fresh: bool = False) -> "Instr":
        """A shallow copy; ``fresh=True`` assigns a new uid."""
        clone = replace(self)
        if fresh:
            clone.uid = fresh_uid()
        return clone

    # -- dataflow helpers ---------------------------------------------------

    def defined_temp(self) -> Optional[Temp]:
        """The temp this instruction writes, if any."""
        if self.op in (
            Opcode.CONST,
            Opcode.MOVE,
            Opcode.BINOP,
            Opcode.UNOP,
            Opcode.INTRINSIC,
            Opcode.LOAD_LOCAL,
            Opcode.READ_SHARED,
            Opcode.GET,
            Opcode.CALL,
        ):
            return self.dest
        return None

    def used_operands(self) -> List[Operand]:
        """Every operand this instruction reads."""
        used: List[Operand] = []
        for operand in (self.lhs, self.rhs, self.src, self.cond):
            if operand is not None:
                used.append(operand)
        used.extend(self.args)
        used.extend(self.indices)
        used.extend(self.local_indices)
        return used

    def used_temps(self) -> List[Temp]:
        return [op for op in self.used_operands() if isinstance(op, Temp)]

    # -- printing ------------------------------------------------------------

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return format_instr(self)


def format_instr(instr: Instr) -> str:
    """Renders an instruction in a readable assembly-like syntax."""
    op = instr.op
    idx = "".join(f"[{operand}]" for operand in instr.indices)
    if op is Opcode.CONST:
        return f"{instr.dest} = const {instr.value}"
    if op is Opcode.MOVE:
        return f"{instr.dest} = {instr.src}"
    if op is Opcode.BINOP:
        return f"{instr.dest} = {instr.lhs} {instr.binop.value} {instr.rhs}"
    if op is Opcode.UNOP:
        return f"{instr.dest} = {instr.unop.value}{instr.src}"
    if op is Opcode.INTRINSIC:
        args = ", ".join(str(a) for a in instr.args)
        return f"{instr.dest} = {instr.intrinsic}({args})"
    if op is Opcode.LOAD_LOCAL:
        return f"{instr.dest} = local {instr.var}{idx}"
    if op is Opcode.STORE_LOCAL:
        return f"local {instr.var}{idx} = {instr.src}"
    if op is Opcode.READ_SHARED:
        return f"{instr.dest} = read {instr.var}{idx}"
    if op is Opcode.WRITE_SHARED:
        return f"write {instr.var}{idx} = {instr.src}"
    if op is Opcode.GET:
        if instr.local_array is not None:
            lidx = "".join(f"[{op_}]" for op_ in instr.local_indices)
            return (
                f"get(&{instr.local_array}{lidx}, {instr.var}{idx}, "
                f"ctr{instr.counter})"
            )
        return f"get({instr.dest}, {instr.var}{idx}, ctr{instr.counter})"
    if op is Opcode.PUT:
        return f"put({instr.var}{idx}, {instr.src}, ctr{instr.counter})"
    if op is Opcode.STORE:
        return f"store({instr.var}{idx}, {instr.src})"
    if op is Opcode.SYNC_CTR:
        return f"sync_ctr(ctr{instr.counter})"
    if op is Opcode.STORE_SYNC:
        return "all_store_sync()"
    if op is Opcode.POST:
        return f"post {instr.var}{idx}"
    if op is Opcode.WAIT:
        return f"wait {instr.var}{idx}"
    if op is Opcode.BARRIER:
        return "barrier"
    if op is Opcode.LOCK:
        return f"lock {instr.var}{idx}"
    if op is Opcode.UNLOCK:
        return f"unlock {instr.var}{idx}"
    if op is Opcode.JUMP:
        return f"jump {instr.target}"
    if op is Opcode.BRANCH:
        return f"branch {instr.cond} ? {instr.true_target} : {instr.false_target}"
    if op is Opcode.CALL:
        args = ", ".join(str(a) for a in instr.args)
        dest = f"{instr.dest} = " if instr.dest is not None else ""
        return f"{dest}call {instr.callee}({args})"
    if op is Opcode.RET:
        return f"ret {instr.src}" if instr.src is not None else "ret"
    raise AssertionError(f"unhandled opcode {op}")  # pragma: no cover


# ---------------------------------------------------------------------------
# Shared variable descriptors (module-level globals)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SharedVar:
    """A module-level shared object: scalar, array, flag array, lock..."""

    name: str
    kind: ScalarKind
    dims: Tuple[int, ...] = ()
    distribution: Distribution = Distribution.BLOCK

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def element_count(self) -> int:
        count = 1
        for extent in self.dims:
            count *= extent
        return count

    @property
    def is_sync_object(self) -> bool:
        return self.kind in (ScalarKind.FLAG, ScalarKind.LOCK)


@dataclass(frozen=True)
class LocalArray:
    """A per-processor local array (invisible to the parallel analyses)."""

    name: str
    kind: ScalarKind
    dims: Tuple[int, ...]

    @property
    def element_count(self) -> int:
        count = 1
        for extent in self.dims:
            count *= extent
        return count
