"""Pytest bootstrap: make ``src/`` importable without installation.

``pip install -e .`` is the normal route; this fallback lets the test
suite and benchmarks run from a plain checkout (or on machines where an
editable install is unavailable, e.g. offline environments without the
``wheel`` package).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
